package tcache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/faultsim"
	"tnsr/internal/store"
)

// entryPath resolves the on-disk file for the cache entry a translation
// under opts would use.
func entryPath(t *testing.T, dir string, opts core.Options) string {
	t.Helper()
	key, err := opts.TransKey(buildUser(t).Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, key+entrySuffix)
}

// TestCrashDebrisSweptOnReopen models the daemon crash-and-restart story:
// a writer dies mid-Put leaving temporaries, the survivors stay intact, and
// the reopened cache's Sweep reclaims exactly the debris.
func TestCrashDebrisSweptOnReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Level: codefile.LevelDefault}
	if _, err := c.Accelerate(buildUser(t), opts); err != nil {
		t.Fatal(err)
	}
	want := serialize(t, func() *codefile.File {
		f := buildUser(t)
		if err := core.Accelerate(f, opts); err != nil {
			t.Fatal(err)
		}
		return f
	}())

	// The crash: both debris shapes a torn writer can leave.
	for _, name := range []string{".tmp-9999", "dead0123456789ab.tns.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	// The restart: fresh Cache over the same directory, sweep first.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := c2.Sweep()
	if err != nil || removed != 2 {
		t.Fatalf("Sweep removed %d, err %v; want 2", removed, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") || strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("debris survived sweep: %q", e.Name())
		}
	}

	// The surviving entry still serves, byte-identical.
	warm := buildUser(t)
	hit, err := c2.Accelerate(warm, opts)
	if err != nil || !hit {
		t.Fatalf("post-recovery accelerate: hit %v, err %v", hit, err)
	}
	if !bytes.Equal(serialize(t, warm), want) {
		t.Error("post-recovery hit is not byte-identical to cold translation")
	}
	if removed, err := c2.Sweep(); err != nil || removed != 0 {
		t.Fatalf("second sweep: %d, %v", removed, err)
	}
}

// TestHalfWrittenEntryNeverServed: an entry truncated mid-file (the shape a
// non-atomic writer would leave; ours can't, but damage can) must fail the
// verify gate and fall back to a byte-identical retranslation.
func TestHalfWrittenEntryNeverServed(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Level: codefile.LevelDefault}
	if _, err := c.Accelerate(buildUser(t), opts); err != nil {
		t.Fatal(err)
	}
	want := serialize(t, func() *codefile.File {
		f := buildUser(t)
		if err := core.Accelerate(f, opts); err != nil {
			t.Fatal(err)
		}
		return f
	}())

	// Truncate the entry to half its size, in place.
	path := entryPath(t, dir, opts)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	got := buildUser(t)
	hit, err := c.Accelerate(got, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("half-written entry served as a hit")
	}
	if !bytes.Equal(serialize(t, got), want) {
		t.Error("fallback translation not byte-identical to cold")
	}
	if s := c.Stats(); s.Rejects != 1 {
		t.Errorf("stats %+v, want 1 reject", s)
	}
}

// TestPutFailureIsAdvisory: a cache population the disk refuses (ENOSPC)
// must not fail the translation — the caller still gets its byte-identical
// result; only the cache goes without.
func TestPutFailureIsAdvisory(t *testing.T) {
	inner, err := store.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New(faultsim.WrapStore(inner, faultsim.StoreOpts{Seed: 11, PNoSpace: 1}))
	opts := core.Options{Level: codefile.LevelDefault}

	cold := buildUser(t)
	if err := core.Accelerate(cold, opts); err != nil {
		t.Fatal(err)
	}

	got := buildUser(t)
	hit, err := c.Accelerate(got, opts)
	if err != nil {
		t.Fatalf("full disk failed the translation: %v", err)
	}
	if hit {
		t.Fatal("unexpected hit")
	}
	if !bytes.Equal(serialize(t, got), serialize(t, cold)) {
		t.Error("translation under failing cache not byte-identical to cold")
	}
	if s := c.Stats(); s.PutErrs != 1 || s.Misses != 1 {
		t.Errorf("stats %+v, want 1 putErr / 1 miss", s)
	}
}
