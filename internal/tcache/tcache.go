// Package tcache is the persistent retranslation cache: the read that
// replaces a translation. RunAdaptive (and any repeated axcel invocation)
// retranslates the same codefile under the same profile over and over; the
// Accelerator is deterministic, so the pair (input fingerprint, every
// output-affecting option — including the profile hash) fully determines
// the acceleration section. The cache stores the whole accelerated
// codefile under that key; a hit grafts the cached section after the same
// integrity gates any loaded codefile passes (v5 checksums in
// codefile.Read, AccelSection.Verify, and an input-fingerprint recheck),
// so a damaged or mismatched cache entry degrades to a cold translation,
// never to wrong code.
//
// The cache is also the tnsxlated service's content-addressed codefile
// store: the service computes the same TransKey, looks entries up with
// GetVerified (every served byte passes the full gate on the way out), and
// populates them with Put after a queued translation completes.
package tcache

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/store"
)

// entrySuffix names cache entries in the backing store.
const entrySuffix = ".tns"

// Cache is a store of accelerated codefiles keyed by core.Options.TransKey.
// Safe for concurrent use: entries are written atomically by the Storage,
// and a racing double-translation writes identical bytes by determinism.
type Cache struct {
	st store.Storage

	// maxBytes, when > 0, bounds the total size of stored entries;
	// exceeding it evicts least-recently-used entries (hits Touch their
	// entry, so recency tracks use, not write order). evictMu serializes
	// the scan-and-evict pass; everything else is lock-free.
	maxBytes int64
	evictMu  sync.Mutex

	hits, misses, rejects, evictions, putErrs atomic.Int64
}

// Stats is a point-in-time view of cache effectiveness.
type Stats struct {
	// Hits served a translation from disk; Misses translated cold and
	// populated the cache; Rejects found an entry that failed an
	// integrity gate and retranslated (the entry is replaced); Evictions
	// counts entries dropped by the size cap; PutErrs counts populations
	// the backing store refused (ENOSPC, I/O error) — the translation
	// still succeeded, the cache just didn't keep it.
	Hits, Misses, Rejects, Evictions, PutErrs int64
}

// Open opens (creating if needed) a cache rooted at a single directory.
func Open(dir string) (*Cache, error) {
	st, err := store.OpenDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tcache: %w", err)
	}
	return New(st), nil
}

// New builds a cache over any Storage (a sharded store spreads entries by
// TransKey prefix across directories; see store.OpenSharded).
func New(st store.Storage) *Cache {
	return &Cache{st: st}
}

// SetMaxBytes bounds the cache's total on-disk size; <= 0 (the default)
// means unbounded. When a Put pushes the total over the cap, least-
// recently-used entries are evicted until it fits again. The entry just
// written always survives, so the write that triggered eviction is never
// its own victim.
func (c *Cache) SetMaxBytes(n int64) { c.maxBytes = n }

// Stats returns the counters accumulated since Open.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Rejects: c.rejects.Load(), Evictions: c.evictions.Load(),
		PutErrs: c.putErrs.Load(),
	}
}

// SizeBytes returns the total stored size and entry count.
func (c *Cache) SizeBytes() (bytes int64, entries int) {
	ents, err := c.st.List()
	if err != nil {
		return 0, 0
	}
	for _, e := range ents {
		bytes += e.Size
	}
	return bytes, len(ents)
}

// Accelerate is core.Accelerate behind the cache: on a hit the codefile
// gains the cached acceleration section without translating; on a miss it
// translates cold and persists the result. The emitted section is
// byte-identical either way (test-pinned), so callers can treat the hit
// flag as pure telemetry.
func (c *Cache) Accelerate(f *codefile.File, opts core.Options) (hit bool, err error) {
	fp := f.Fingerprint()
	key, err := opts.TransKey(fp)
	if err != nil {
		return false, err
	}
	base := opts.CodeBase
	if base == 0 {
		base = millicode.UserCodeBase
	}

	if cf := c.getVerified(key, fp, base); cf != nil {
		f.Accel = cf.Accel
		c.hits.Add(1)
		c.st.Touch(key + entrySuffix) // best-effort recency bump
		return true, nil
	}

	if err := core.Accelerate(f, opts); err != nil {
		return false, err
	}
	c.misses.Add(1)
	// The population write is advisory: the translation already succeeded
	// and f carries its section, so a full or failing disk costs the next
	// caller a retranslation, never this caller its result.
	if err := c.Put(key, f); err != nil {
		c.putErrs.Add(1)
	}
	return false, nil
}

// Sweep removes crash debris (orphaned atomic-write temporaries) from the
// backing store; a restarting daemon runs it before serving. Stores without
// a sweep surface report 0.
func (c *Cache) Sweep() (int, error) { return store.Sweep(c.st) }

// GetVerified returns the stored accelerated codefile bytes for key after
// re-running every gate a fresh load gets: the strict v5 parser, an
// input-fingerprint recheck (when wantFP is nonzero), and structural
// AccelSection.Verify at the given code base. A miss returns (nil, false);
// an entry failing any gate is deleted, counted as a reject, and reported
// as a miss — the caller retranslates, never serves it.
func (c *Cache) GetVerified(key string, wantFP uint64, base uint32) ([]byte, bool) {
	data, err := c.st.Get(key + entrySuffix)
	if err != nil {
		return nil, false
	}
	if c.verifyEntry(data, wantFP, base) == nil {
		c.rejects.Add(1)
		c.st.Delete(key + entrySuffix)
		return nil, false
	}
	c.st.Touch(key + entrySuffix)
	return data, true
}

// getVerified is GetVerified returning the parsed file (for grafting).
func (c *Cache) getVerified(key string, wantFP uint64, base uint32) *codefile.File {
	data, err := c.st.Get(key + entrySuffix)
	if err != nil {
		return nil
	}
	cf := c.verifyEntry(data, wantFP, base)
	if cf == nil {
		c.rejects.Add(1)
		c.st.Delete(key + entrySuffix)
	}
	return cf
}

// verifyEntry runs a cached entry through the load gates. wantFP zero skips
// the fingerprint recheck (key-only lookups, where the entry's own content
// is the authority). Returns nil when any gate fails.
func (c *Cache) verifyEntry(data []byte, wantFP uint64, base uint32) *codefile.File {
	cf, err := codefile.Read(bytes.NewReader(data))
	if err != nil || cf.Accel == nil {
		return nil
	}
	if wantFP != 0 && cf.Fingerprint() != wantFP {
		return nil
	}
	if err := cf.Accel.Verify(cf, int(base)); err != nil {
		return nil
	}
	return cf
}

// Put persists an accelerated codefile under key and applies the size cap.
func (c *Cache) Put(key string, f *codefile.File) error {
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		return fmt.Errorf("tcache: %w", err)
	}
	if err := c.st.Put(key+entrySuffix, buf.Bytes()); err != nil {
		return fmt.Errorf("tcache: %w", err)
	}
	c.maybeEvict(key + entrySuffix)
	return nil
}

// maybeEvict enforces the size cap: while the stored total exceeds
// maxBytes, the least-recently-used entry (oldest ModTime; hits Touch
// theirs) other than the one just written is deleted. Eviction is pure
// capacity management — a future request for an evicted key misses and
// retranslates, it can never be served wrong code, and surviving entries
// still pass the full verify gate on every subsequent hit.
func (c *Cache) maybeEvict(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	ents, err := c.st.List()
	if err != nil {
		return
	}
	var total int64
	for _, e := range ents {
		total += e.Size
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].ModTime.Before(ents[j].ModTime) })
	for _, e := range ents {
		if total <= c.maxBytes {
			break
		}
		if e.Key == keep {
			continue
		}
		if c.st.Delete(e.Key) == nil {
			total -= e.Size
			c.evictions.Add(1)
		}
	}
}
