// Package tcache is the persistent retranslation cache: the read that
// replaces a translation. RunAdaptive (and any repeated axcel invocation)
// retranslates the same codefile under the same profile over and over; the
// Accelerator is deterministic, so the pair (input fingerprint, every
// output-affecting option — including the profile hash) fully determines
// the acceleration section. The cache stores the whole accelerated
// codefile under that key; a hit grafts the cached section after the same
// integrity gates any loaded codefile passes (v5 checksums in
// codefile.Read, AccelSection.Verify, and an input-fingerprint recheck),
// so a damaged or mismatched cache entry degrades to a cold translation,
// never to wrong code.
package tcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
)

// Cache is a directory of accelerated codefiles keyed by
// core.Options.TransKey. Safe for concurrent use: entries are written via
// temp-file + rename, and a racing double-translation writes identical
// bytes by determinism.
type Cache struct {
	dir string

	hits, misses, rejects atomic.Int64
}

// Stats is a point-in-time view of cache effectiveness.
type Stats struct {
	// Hits served a translation from disk; Misses translated cold and
	// populated the cache; Rejects found an entry that failed an
	// integrity gate and retranslated (the entry is replaced).
	Hits, Misses, Rejects int64
}

// Open opens (creating if needed) a cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("tcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Stats returns the counters accumulated since Open.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Rejects: c.rejects.Load()}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".tns")
}

// Accelerate is core.Accelerate behind the cache: on a hit the codefile
// gains the cached acceleration section without translating; on a miss it
// translates cold and persists the result. The emitted section is
// byte-identical either way (test-pinned), so callers can treat the hit
// flag as pure telemetry.
func (c *Cache) Accelerate(f *codefile.File, opts core.Options) (hit bool, err error) {
	fp := f.Fingerprint()
	key, err := opts.TransKey(fp)
	if err != nil {
		return false, err
	}
	path := c.path(key)

	if data, err := os.ReadFile(path); err == nil {
		if sec := c.verifyEntry(data, fp, opts); sec != nil {
			f.Accel = sec
			c.hits.Add(1)
			return true, nil
		}
		// Damaged, truncated, or mismatched entry: drop it and retranslate.
		c.rejects.Add(1)
		os.Remove(path)
	}

	if err := core.Accelerate(f, opts); err != nil {
		return false, err
	}
	c.misses.Add(1)
	if err := c.write(path, f); err != nil {
		return false, err
	}
	return false, nil
}

// verifyEntry runs a cached entry through every gate a fresh load gets:
// the strict v5 parser, structural verification against the translated
// region, and an input-fingerprint recheck (TransKey collisions are
// astronomically unlikely but the recheck makes them harmless). Returns
// nil when any gate fails.
func (c *Cache) verifyEntry(data []byte, wantFP uint64, opts core.Options) *codefile.AccelSection {
	cf, err := codefile.Read(bytes.NewReader(data))
	if err != nil || cf.Accel == nil {
		return nil
	}
	if cf.Fingerprint() != wantFP {
		return nil
	}
	base := opts.CodeBase
	if base == 0 {
		base = millicode.UserCodeBase
	}
	if err := cf.Accel.Verify(cf, int(base)); err != nil {
		return nil
	}
	return cf.Accel
}

// write persists the accelerated codefile atomically: a unique temp file
// in the cache directory, then rename. Racing writers (goroutines or
// processes sharing the directory) each rename their own temp file, and
// the renames are benign because determinism makes the bytes identical.
func (c *Cache) write(path string, f *codefile.File) error {
	w, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("tcache: %w", err)
	}
	tmp := w.Name()
	if _, err := f.WriteTo(w); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("tcache: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tcache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tcache: %w", err)
	}
	return nil
}
