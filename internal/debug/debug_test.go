package debug

import (
	"strings"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/talc"
	"tnsr/internal/xrun"
)

const prog = `
INT counter;
INT total;
INT PROC double(x); INT x;
BEGIN
  INT local;
  local := x + x;
  RETURN local;
END;
PROC main MAIN;
BEGIN
  INT i;
  counter := 0;
  total := 0;
  FOR i := 1 TO 5 DO
  BEGIN
    counter := counter + 1;
    total := total + double(i);
  END;
END;
`

func makeDebugger(t *testing.T, lvl codefile.AccelLevel) *Debugger {
	t.Helper()
	f, err := talc.Compile("dbg", prog)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != codefile.LevelNone {
		if err := core.Accelerate(f, core.Options{Level: lvl}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := xrun.New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(r)
}

func TestBreakpointAndInspect(t *testing.T) {
	for _, lvl := range []codefile.AccelLevel{
		codefile.LevelNone, codefile.LevelStmtDebug, codefile.LevelDefault,
	} {
		lvl := lvl
		t.Run(lvl.String(), func(t *testing.T) {
			d := makeDebugger(t, lvl)
			// Break where "total := total + double(i)" runs (line 18).
			addr, err := d.BreakAtStatement(18)
			if err != nil {
				t.Fatal(err)
			}
			hits := 0
			for i := 0; i < 10; i++ {
				if err := d.Run(10_000_000); err != nil {
					t.Fatal(err)
				}
				if !d.R.BPHit {
					break
				}
				hits++
				loc := d.Where()
				if loc.TNSAddr != addr {
					t.Fatalf("stopped at %d, want %d", loc.TNSAddr, addr)
				}
				if loc.Proc != "main" {
					t.Errorf("proc = %q", loc.Proc)
				}
				c, err := d.ReadVar("counter")
				if err != nil {
					t.Fatal(err)
				}
				if int(c) != hits {
					t.Errorf("hit %d: counter = %d", hits, c)
				}
				i2, err := d.ReadVar("i")
				if err != nil {
					t.Fatal(err)
				}
				if int(i2) != hits {
					t.Errorf("hit %d: i = %d", hits, i2)
				}
			}
			if hits != 5 {
				t.Errorf("breakpoint hit %d times, want 5", hits)
			}
			if !d.R.Halted {
				t.Error("program did not finish")
			}
			tot, err := d.ReadVar("total")
			if err != nil {
				t.Fatal(err)
			}
			if tot != 2*(1+2+3+4+5) {
				t.Errorf("total = %d", tot)
			}
		})
	}
}

func TestWriteVarChangesExecution(t *testing.T) {
	d := makeDebugger(t, codefile.LevelStmtDebug)
	addr, err := d.BreakAtStatement(18)
	if err != nil {
		t.Fatal(err)
	}
	_ = addr
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !d.R.BPHit {
		t.Fatal("no breakpoint hit")
	}
	// Memory modification at a memory-exact point is reliable.
	if err := d.WriteVar("total", 1000); err != nil {
		t.Fatal(err)
	}
	d.ClearAll()
	if err := d.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	tot, err := d.ReadVar("total")
	if err != nil {
		t.Fatal(err)
	}
	if tot != 1000+30 {
		t.Errorf("total = %d, want 1030", tot)
	}
}

func TestStepStatement(t *testing.T) {
	d := makeDebugger(t, codefile.LevelStmtDebug)
	lines := []int32{}
	for i := 0; i < 8; i++ {
		loc, err := d.StepStatement(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if d.R.Halted {
			break
		}
		lines = append(lines, loc.Line)
	}
	if len(lines) < 4 {
		t.Fatalf("too few steps: %v", lines)
	}
	// The first statements of main are lines 13 and 14.
	found := false
	for _, l := range lines {
		if l == 14 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected to step through line 14; got %v", lines)
	}
}

func TestRegistersAtExactPoints(t *testing.T) {
	d := makeDebugger(t, codefile.LevelStmtDebug)
	if _, err := d.BreakAtStatement(17); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !d.R.BPHit {
		t.Fatal("no hit")
	}
	loc := d.Where()
	if d.R.InRISCMode() && !loc.Exact {
		t.Error("StmtDebug statement boundaries should be register-exact")
	}
	_, rp, _ := d.Registers()
	if rp != 7 {
		t.Errorf("RP at statement boundary = %d, want 7 (empty)", rp)
	}
}

func TestDisassemblyViews(t *testing.T) {
	d := makeDebugger(t, codefile.LevelDefault)
	if _, err := d.BreakAtStatement(14); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	loc := d.Where()
	cisc := d.DisassembleTNS(loc.Space, loc.TNSAddr, 4)
	if !strings.Contains(cisc, ":") || len(cisc) < 10 {
		t.Errorf("CISC view: %q", cisc)
	}
	if d.R.InRISCMode() {
		mips := d.DisassembleRISC(4)
		if len(mips) < 10 {
			t.Errorf("RISC view: %q", mips)
		}
	}
}

// TestUnmappedBreakError checks the diagnostic for non-exact addresses.
func TestUnmappedBreakError(t *testing.T) {
	d := makeDebugger(t, codefile.LevelDefault)
	// Find an address that is an instruction but not a statement boundary.
	f := d.R.User
	stmts := map[uint16]bool{}
	for _, st := range f.Statements {
		stmts[st.Addr] = true
	}
	var tryAddr uint16
	for a := range f.Code {
		if _, _, ok := f.Accel.PMap.Lookup(uint16(a)); !ok {
			tryAddr = uint16(a)
			break
		}
	}
	if err := d.BreakAt(interp.SpaceUser, tryAddr); err == nil {
		t.Log("address happened to be mapped; acceptable")
	}
}
