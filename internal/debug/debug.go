// Package debug implements the paper's debugging story for accelerated
// programs: source-level and CISC-machine-level debugging "much as if the
// program were still running on a microcoded TNS machine".
//
// The mechanics follow the paper exactly:
//
//   - Memory-exact points (statement boundaries under the Default level)
//     support reliable stepping, breakpointing, and inspection of variables
//     in memory: prior statements' stores have completed, later ones have
//     not begun.
//   - Register-exact points (every statement under StmtDebug) additionally
//     make the full TNS register state — R0..R7, RP, CC — inspectable and
//     modifiable in purely CISC terms, because the Accelerator re-creates
//     canonical state there.
//   - The monotonic PMap provides the inverse mapping from a RISC PC back
//     to the "CISC view" address (a binary search, speed uncritical).
//   - Welded statements (a store scheduled into a following branch's delay
//     slot) are reported per translation statistics.
package debug

import (
	"fmt"
	"strings"

	"tnsr/internal/backend"
	"tnsr/internal/codefile"
	"tnsr/internal/interp"
	"tnsr/internal/tns"
	"tnsr/internal/xrun"
)

// Debugger drives an accelerated (or unaccelerated) program under
// breakpoint control.
type Debugger struct {
	R *xrun.Runner
}

// New wraps a mixed-mode runner.
func New(r *xrun.Runner) *Debugger { return &Debugger{R: r} }

// file returns the codefile for a space.
func (d *Debugger) file(space interp.Space) *codefile.File {
	if space == interp.SpaceLib {
		return d.R.Lib
	}
	return d.R.User
}

// Location is a stopped position in CISC terms.
type Location struct {
	Space    interp.Space
	TNSAddr  uint16
	Proc     string
	Line     int32 // source line of the containing statement, or -1
	RISCMode bool  // stopped in translated code (vs. interpreter)
	Exact    bool  // register-exact (full register inspection reliable)
}

// Where reports the current position, using the PMap inverse when stopped
// in RISC code.
func (d *Debugger) Where() Location {
	loc := Location{RISCMode: d.R.InRISCMode()}
	if loc.RISCMode {
		env := uint16(d.R.Sim.Reg[backend.RegENV])
		loc.Space = interp.UnpackENVSpace(env)
		f := d.file(loc.Space)
		if f.Accel != nil {
			if a, ok := f.Accel.PMap.Inverse(int(d.R.Sim.PC)); ok {
				loc.TNSAddr = a
				_, re, _ := f.Accel.PMap.Lookup(a)
				loc.Exact = re && int(d.R.Sim.PC) == mustIdx(f, a)
			}
		}
	} else {
		loc.Space = d.R.Int.Space
		loc.TNSAddr = d.R.Int.P
		loc.Exact = true // the interpreter is always CISC-exact
	}
	f := d.file(loc.Space)
	if pi := f.ProcContaining(loc.TNSAddr); pi >= 0 {
		loc.Proc = f.Procs[pi].Name
	}
	loc.Line = -1
	// The nearest statement at or before the address names the line.
	var best *codefile.Statement
	for i := range f.Statements {
		st := &f.Statements[i]
		if st.Addr <= loc.TNSAddr && (best == nil || st.Addr > best.Addr) {
			best = st
		}
	}
	if best != nil {
		loc.Line = best.Line
	}
	return loc
}

func mustIdx(f *codefile.File, a uint16) int {
	idx, _, _ := f.Accel.PMap.Lookup(a)
	return idx
}

// BreakAtStatement sets a breakpoint at the statement boundary nearest to
// (at or after) the given source line in the user codefile. It returns the
// TNS address armed.
func (d *Debugger) BreakAtStatement(line int32) (uint16, error) {
	f := d.R.User
	var best *codefile.Statement
	for i := range f.Statements {
		st := &f.Statements[i]
		if st.Line >= line && (best == nil || st.Line < best.Line ||
			(st.Line == best.Line && st.Addr < best.Addr)) {
			best = st
		}
	}
	if best == nil {
		return 0, fmt.Errorf("debug: no statement at or after line %d", line)
	}
	return best.Addr, d.BreakAt(interp.SpaceUser, best.Addr)
}

// BreakAt arms a breakpoint at a TNS address. For translated code the
// address must be a mapped (memory- or register-exact) point; unmapped
// addresses are still honored when execution is interpreted.
func (d *Debugger) BreakAt(space interp.Space, addr uint16) error {
	if d.R.TNSBreaks == nil {
		d.R.TNSBreaks = map[uint32]bool{}
	}
	d.R.TNSBreaks[uint32(space)<<16|uint32(addr)] = true
	f := d.file(space)
	if f.Accel != nil {
		if idx, _, ok := f.Accel.PMap.Lookup(addr); ok {
			if d.R.Sim.Breakpoints == nil {
				d.R.Sim.Breakpoints = map[uint32]bool{}
			}
			d.R.Sim.Breakpoints[uint32(idx)] = true
			return nil
		}
		return fmt.Errorf("debug: %d is not an exact point in the translation"+
			" (it will still break under interpretation)", addr)
	}
	return nil
}

// ClearAll removes every breakpoint.
func (d *Debugger) ClearAll() {
	d.R.TNSBreaks = nil
	d.R.Sim.Breakpoints = nil
}

// Run resumes until a breakpoint or completion.
func (d *Debugger) Run(budget int64) error { return d.R.Continue(budget) }

// StepStatement runs to the next statement boundary of the user codefile.
func (d *Debugger) StepStatement(budget int64) (Location, error) {
	f := d.R.User
	saved := d.R.TNSBreaks
	savedSim := d.R.Sim.Breakpoints
	d.R.TNSBreaks = map[uint32]bool{}
	d.R.Sim.Breakpoints = map[uint32]bool{}
	for _, st := range f.Statements {
		d.R.TNSBreaks[uint32(interp.SpaceUser)<<16|uint32(st.Addr)] = true
		if f.Accel != nil {
			if idx, _, ok := f.Accel.PMap.Lookup(st.Addr); ok {
				d.R.Sim.Breakpoints[uint32(idx)] = true
			}
		}
	}
	err := d.R.Continue(budget)
	d.R.TNSBreaks = saved
	d.R.Sim.Breakpoints = savedSim
	return d.Where(), err
}

// Registers returns the TNS register state in CISC terms. At register-exact
// points (always, under StmtDebug) the values are exact; at memory-exact
// points the paper warns they may not be.
func (d *Debugger) Registers() (R [8]uint16, RP uint8, CC int8) {
	if d.R.InRISCMode() {
		s := d.R.Sim
		for i := 0; i < 8; i++ {
			R[i] = uint16(s.Reg[backend.RegR0+i])
		}
		RP = uint8(s.Reg[backend.RegENV] & 7)
		cc := int32(s.Reg[backend.RegCC])
		switch {
		case cc < 0:
			CC = -1
		case cc > 0:
			CC = 1
		}
		return
	}
	m := d.R.Int
	return m.R, m.RP, m.CC
}

// SetRegister modifies an emulated TNS register. Reliable only at
// register-exact points (the StmtDebug promise); the paper notes that at
// plain memory-exact points modification may not take effect.
func (d *Debugger) SetRegister(n int, v uint16) {
	if d.R.InRISCMode() {
		d.R.Sim.Reg[backend.RegR0+(n&7)] = uint32(int32(int16(v)))
		return
	}
	d.R.Int.R[n&7] = v
}

// ReadVar reads a variable by name: a global, or a local/parameter of the
// procedure containing the current position (using the live L register).
func (d *Debugger) ReadVar(name string) (int32, error) {
	sym, base, err := d.resolveVar(name)
	if err != nil {
		return 0, err
	}
	addr := uint16(int(base) + int(sym.Addr))
	w := d.dataWord(addr)
	if sym.Words == 2 {
		return int32(uint32(w)<<16 | uint32(d.dataWord(addr+1))), nil
	}
	return int32(int16(w)), nil
}

// WriteVar stores a variable by name (memory modification is reliable at
// memory-exact points; the operand-fetch caveat the paper gives applies to
// subsequent statements only under Default).
func (d *Debugger) WriteVar(name string, v int32) error {
	sym, base, err := d.resolveVar(name)
	if err != nil {
		return err
	}
	addr := uint16(int(base) + int(sym.Addr))
	if sym.Words == 2 {
		d.setDataWord(addr, uint16(uint32(v)>>16))
		d.setDataWord(addr+1, uint16(v))
		return nil
	}
	d.setDataWord(addr, uint16(v))
	return nil
}

func (d *Debugger) resolveVar(name string) (*codefile.Symbol, uint16, error) {
	loc := d.Where()
	f := d.file(loc.Space)
	upper := strings.ToUpper(name)
	pi := int32(f.ProcContaining(loc.TNSAddr))
	// Prefer a local/parameter of the current procedure.
	for i := range f.Symbols {
		s := &f.Symbols[i]
		if strings.ToUpper(s.Name) == upper && s.Proc == pi && s.Proc >= 0 {
			return s, d.currentL(), nil
		}
	}
	for i := range f.Symbols {
		s := &f.Symbols[i]
		if strings.ToUpper(s.Name) == upper && s.Proc == -1 {
			return s, 0, nil
		}
	}
	return nil, 0, fmt.Errorf("debug: no symbol %q in scope", name)
}

func (d *Debugger) currentL() uint16 {
	if d.R.InRISCMode() {
		return uint16(d.R.Sim.Reg[backend.RegL] / 2)
	}
	return d.R.Int.L
}

func (d *Debugger) dataWord(addr uint16) uint16 {
	if d.R.InRISCMode() {
		return d.R.Sim.ReadHalf(uint32(addr) * 2)
	}
	return d.R.Int.Mem[addr]
}

func (d *Debugger) setDataWord(addr uint16, v uint16) {
	if d.R.InRISCMode() {
		d.R.Sim.WriteHalf(uint32(addr)*2, v)
		return
	}
	d.R.Int.Mem[addr] = v
}

// DisassembleTNS renders the CISC view around an address.
func (d *Debugger) DisassembleTNS(space interp.Space, addr uint16, n int) string {
	f := d.file(space)
	var b strings.Builder
	for i := 0; i < n && int(addr)+i < len(f.Code); i++ {
		a := addr + uint16(i)
		fmt.Fprintf(&b, "%5d: %s\n", a, tns.Disassemble(a, f.Code[a]))
	}
	return b.String()
}

// DisassembleRISC renders the translated view at the current RISC position.
func (d *Debugger) DisassembleRISC(n int) string {
	s := d.R.Sim
	var b strings.Builder
	for i := 0; i < n && int(s.PC)+i < len(s.Code); i++ {
		pc := s.PC + uint32(i)
		fmt.Fprintf(&b, "%8d: %s\n", pc, d.R.Backend().Disasm(pc, s.Code[pc]))
	}
	return b.String()
}

// WeldedStatements reports how many statement pairs the scheduler welded
// (a store moved into a branch delay slot), per the translation statistics.
func (d *Debugger) WeldedStatements() int {
	n := 0
	if d.R.User.Accel != nil {
		n += d.R.User.Accel.Stats.WeldedStmts
	}
	if d.R.Lib != nil && d.R.Lib.Accel != nil {
		n += d.R.Lib.Accel.Stats.WeldedStmts
	}
	return n
}
