package machine

import (
	"testing"

	"tnsr/internal/tns"
)

func TestCyclesPricing(t *testing.T) {
	var counts [tns.NumCostClasses]int64
	counts[tns.ClassSimple] = 100
	counts[tns.ClassMem] = 50
	counts[tns.ClassLong] = 2
	got := CLX800.Cycles(&counts, 40)
	want := 100*CLX800.Cost[tns.ClassSimple] +
		50*CLX800.Cost[tns.ClassMem] +
		2*CLX800.Cost[tns.ClassLong] +
		40*CLX800.LongPerUnit
	if got != want {
		t.Errorf("Cycles = %v, want %v", got, want)
	}
}

func TestSeconds(t *testing.T) {
	if s := CLX800.Seconds(16.5e6); s != 1.0 {
		t.Errorf("16.5M cycles at 16.5MHz = %v s, want 1", s)
	}
	if s := CycloneRInterp.Seconds(25e6); s != 1.0 {
		t.Errorf("25M cycles at 25MHz = %v s, want 1", s)
	}
}

// TestMachineOrdering pins the published relationships: every class costs
// the most on the CLX 800, less on the VLX, least on the superscalar
// Cyclone; the interpreter costs more RISC cycles than any CISC machine's
// microcode cycles for the same class.
func TestMachineOrdering(t *testing.T) {
	for c := tns.CostClass(0); c < tns.NumCostClasses; c++ {
		clx, vlx, cyc := CLX800.Cost[c], VLX.Cost[c], Cyclone.Cost[c]
		if !(clx > vlx && vlx > cyc) {
			t.Errorf("class %d: cost ordering CLX(%v) > VLX(%v) > Cyclone(%v) violated",
				c, clx, vlx, cyc)
		}
		if CycloneRInterp.Cost[c] <= clx {
			t.Errorf("class %d: interpreting should cost more cycles than CLX microcode", c)
		}
	}
}

// TestPublishedSpeedRatios checks the calibration anchors: with a typical
// instruction mix, machine speed ratios stay in the paper's reported bands
// (VLX 1.16-1.24x CLX; Cyclone 3.6-4.4x CLX).
func TestPublishedSpeedRatios(t *testing.T) {
	// A typical stack-code mix: mostly memory and simple ops, some calls.
	var counts [tns.NumCostClasses]int64
	counts[tns.ClassSimple] = 300
	counts[tns.ClassMem] = 400
	counts[tns.ClassMemInd] = 60
	counts[tns.ClassDouble] = 30
	counts[tns.ClassMulDiv] = 10
	counts[tns.ClassBranch] = 150
	counts[tns.ClassCall] = 40
	counts[tns.ClassExit] = 40
	speed := func(m *CostModel) float64 {
		return 1 / m.Seconds(m.Cycles(&counts, 0))
	}
	clx := speed(&CLX800)
	if r := speed(&VLX) / clx; r < 1.1 || r > 1.35 {
		t.Errorf("VLX/CLX = %.2f, expected ~1.2", r)
	}
	if r := speed(&Cyclone) / clx; r < 3.4 || r > 4.6 {
		t.Errorf("Cyclone/CLX = %.2f, expected ~4", r)
	}
	if r := speed(&CycloneRInterp) / clx; r < 0.35 || r > 0.65 {
		t.Errorf("Interp/CLX = %.2f, expected ~0.5", r)
	}
}

func TestCISCModelsList(t *testing.T) {
	if len(CISCModels) != 3 || CISCModels[0].Name != "CLX800" ||
		CISCModels[2].Name != "Cyclone" {
		t.Errorf("CISCModels = %v", CISCModels)
	}
}
