// Package machine defines the cycle-cost and clock models for the machines
// measured in the paper: three microcoded CISC implementations of the TNS
// architecture (NonStop CLX 800, VLX, and the superscalar Cyclone) and the
// RISC-based NonStop Cyclone/R.
//
// The CISC machines are modeled as per-opcode-class microcode cost tables
// calibrated to each machine's published clock rate and peak execution rate
// (CLX 800: 16.5 MHz, peak 2 cycles/instruction; VLX: 12 MHz, peak 1
// cycle/instruction; Cyclone: 22.3 MHz, superscalar, peak 2 instructions/
// cycle). Costs above peak reflect microcode steps for memory access,
// indirection, calls, and long-running instructions. This is the
// substitution documented in DESIGN.md §5: we do not have Tandem's
// microcode listings, so the table *positions* the CISC baselines while all
// RISC-side results come from executing the Accelerator's actual output on
// the cycle-counted simulator.
//
// The software interpreter that executes TNS code on Cyclone/R is likewise
// modeled as RISC cycles per interpreted TNS instruction, the cost class of
// a threaded-code MIPS interpreter (dispatch plus per-operation work).
package machine

import "tnsr/internal/tns"

// CostModel prices interpreted TNS instruction streams: cycles per
// instruction by cost class, plus a per-unit cost for long-running
// instructions (per byte or word moved).
type CostModel struct {
	Name        string
	ClockMHz    float64
	Cost        [tns.NumCostClasses]float64
	LongPerUnit float64
}

// Cycles prices an execution profile: counts of executed instructions per
// class plus the total units processed by long-running instructions.
func (m *CostModel) Cycles(counts *[tns.NumCostClasses]int64, longUnits int64) float64 {
	var c float64
	for i, n := range counts {
		c += float64(n) * m.Cost[i]
	}
	return c + float64(longUnits)*m.LongPerUnit
}

// Seconds converts a cycle count on this machine to seconds.
func (m *CostModel) Seconds(cycles float64) float64 {
	return cycles / (m.ClockMHz * 1e6)
}

// Cost-class index order (see tns.CostClass): Simple, Mem, MemInd, MemExt,
// Double, MulDiv, Branch, Call, Exit, Long, SVC.

// CLX800 models the NonStop CLX 800 (1991, 16.5 MHz CMOS, peak 2
// cycles/instruction), the paper's 1.00 reference machine.
var CLX800 = CostModel{
	Name:     "CLX800",
	ClockMHz: 16.5,
	Cost: [tns.NumCostClasses]float64{
		4.0,  // Simple
		8.0,  // Mem
		12.0, // MemInd
		18.0, // MemExt
		10.0, // Double
		30.0, // MulDiv
		6.0,  // Branch
		28.0, // Call
		24.0, // Exit
		20.0, // Long (setup)
		40.0, // SVC
	},
	LongPerUnit: 2.0,
}

// VLX models the NonStop VLX (1986, 12 MHz ECL, peak 1 cycle/instruction).
var VLX = CostModel{
	Name:     "VLX",
	ClockMHz: 12.0,
	Cost: [tns.NumCostClasses]float64{
		2.4,  // Simple
		4.8,  // Mem
		7.2,  // MemInd
		11.0, // MemExt
		6.0,  // Double
		18.0, // MulDiv
		3.6,  // Branch
		17.0, // Call
		14.0, // Exit
		12.0, // Long
		24.0, // SVC
	},
	LongPerUnit: 1.2,
}

// Cyclone models the NonStop Cyclone (1989, 22.3 MHz ECL, superscalar, peak
// 2 instructions/cycle). Fractional costs reflect instruction pairing.
var Cyclone = CostModel{
	Name:     "Cyclone",
	ClockMHz: 22.3,
	Cost: [tns.NumCostClasses]float64{
		1.3,  // Simple
		2.7,  // Mem
		4.0,  // MemInd
		5.5,  // MemExt
		2.8,  // Double (the pairing hardware is strong on 32-bit sequences)
		10.0, // MulDiv
		2.0,  // Branch
		9.5,  // Call
		8.0,  // Exit
		7.0,  // Long
		14.0, // SVC
	},
	LongPerUnit: 0.7,
}

// CycloneRClockMHz is the clock rate of the NonStop Cyclone/R (25 MHz,
// MIPS R3000). RISC-mode cycles come from the risc package's simulator,
// not from a cost table.
const CycloneRClockMHz = 25.0

// CycloneRInterp prices the TNS software interpreter running on Cyclone/R:
// R3000 cycles consumed to interpret one TNS instruction of each class
// (fetch/decode/dispatch plus operation work).
var CycloneRInterp = CostModel{
	Name:     "CycloneR-Interp",
	ClockMHz: CycloneRClockMHz,
	Cost: [tns.NumCostClasses]float64{
		19.0, // Simple
		24.0, // Mem
		31.0, // MemInd
		44.0, // MemExt
		26.0, // Double
		46.0, // MulDiv
		20.0, // Branch
		54.0, // Call
		47.0, // Exit
		30.0, // Long (setup; the move loop itself is efficient)
		44.0, // SVC
	},
	LongPerUnit: 2.4,
}

// CISCModels lists the CISC hardware baselines in the order the paper's
// tables print them.
var CISCModels = []*CostModel{&CLX800, &VLX, &Cyclone}
