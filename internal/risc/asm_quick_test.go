package risc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestDisasmAsmRoundTrip is the assembler/disassembler agreement property:
// for randomly generated encodable instructions, Disassemble's output
// assembles back to the identical word.
func TestDisasmAsmRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	reg := func() uint8 { return uint8(r.Intn(32)) }
	gen := []func() uint32{
		func() uint32 {
			ops := []Op{ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU}
			return EncALU(ops[r.Intn(len(ops))], reg(), reg(), reg())
		},
		func() uint32 {
			ops := []Op{SLL, SRL, SRA}
			return EncShift(ops[r.Intn(len(ops))], reg(), reg(), uint8(r.Intn(32)))
		},
		func() uint32 {
			ops := []Op{ADDIU, SLTI, SLTIU}
			return EncImm(ops[r.Intn(len(ops))], reg(), reg(), int32(int16(r.Uint32())))
		},
		func() uint32 {
			ops := []Op{ANDI, ORI, XORI}
			return EncImm(ops[r.Intn(len(ops))], reg(), reg(), int32(r.Intn(0x10000)))
		},
		func() uint32 {
			ops := []Op{LB, LH, LW, LBU, LHU, SB, SH, SW}
			return EncMem(ops[r.Intn(len(ops))], reg(), reg(), int32(int16(r.Uint32())))
		},
		func() uint32 { return EncJR(reg()) },
		func() uint32 { return EncJALR(reg(), reg()) },
		func() uint32 {
			ops := []Op{MULT, MULTU, DIV, DIVU}
			return EncMulDiv(ops[r.Intn(len(ops))], reg(), reg())
		},
		func() uint32 { return EncMulDiv(MFHI, reg(), 0) },
		func() uint32 { return EncBreak(uint32(r.Intn(1 << 20))) },
		func() uint32 { return EncSyscall(uint32(r.Intn(1 << 20))) },
	}
	for i := 0; i < 500; i++ {
		w := gen[r.Intn(len(gen))]()
		if w == NOP {
			continue // "nop" assembles to the canonical word, fine
		}
		text := Disassemble(0, w)
		if strings.HasPrefix(text, ".word") {
			t.Fatalf("generated undisassemblable word %08x", w)
		}
		code, _, err := Assemble(text, nil)
		if err != nil {
			t.Fatalf("%q does not assemble: %v", text, err)
		}
		if len(code) != 1 || code[0] != w {
			t.Fatalf("round trip %08x -> %q -> %08x", w, text, code[0])
		}
	}
}

// TestBranchDisasmTargets: branch disassembly prints absolute word
// indexes; reassembling at the same position reproduces the displacement.
func TestBranchDisasmTargets(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		pc := uint32(r.Intn(1000)) + 100
		disp := int32(r.Intn(150) - 75)
		ops := []Op{BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ}
		op := ops[r.Intn(len(ops))]
		var w uint32
		if op == BEQ || op == BNE {
			w = EncBranch(op, uint8(r.Intn(32)), uint8(r.Intn(32)), disp)
		} else {
			w = EncBranch(op, uint8(r.Intn(32)), 0, disp)
		}
		text := Disassemble(pc, w)
		// Reassemble with padding so the branch sits at the same pc.
		var sb strings.Builder
		for j := uint32(0); j < pc; j++ {
			sb.WriteString("nop\n")
		}
		sb.WriteString(text + "\n")
		code, _, err := Assemble(sb.String(), nil)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if code[pc] != w {
			t.Fatalf("branch at %d: %08x -> %q -> %08x", pc, w, text, code[pc])
		}
	}
}

func TestDisassembleNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		w := r.Uint32()
		_ = Disassemble(uint32(i), w) // must not panic
	}
	_ = fmt.Sprint() // keep fmt imported for symmetry with failures
}
