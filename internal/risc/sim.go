package risc

import (
	"fmt"

	"tnsr/internal/backend"
)

// Trap codes raised by RISC execution. The numbering is the cross-backend
// contract defined next to backend.CPU; aliased here for convenience.
const (
	TrapNone      = backend.TrapNone
	TrapOverflow  = backend.TrapOverflow // ADD/ADDI/SUB signed overflow
	TrapAddress   = backend.TrapAddress  // unaligned or out-of-range access
	TrapBadInstr  = backend.TrapBadInstr
	TrapDivZero   = backend.TrapDivZero   // raised by millicode via BREAK, not by DIV itself
	TrapProtected = backend.TrapProtected // store into the fenced runtime-table region
)

// CacheConfig describes one direct-mapped cache. A zero SizeBytes disables
// the cache (all accesses hit).
type CacheConfig struct {
	SizeBytes int
	LineBytes int
}

// Config holds the simulator's timing parameters. The defaults (see
// DefaultConfig) model the Cyclone/R: an R3000 with one branch delay slot,
// interlocked loads, 12-cycle multiply, 35-cycle divide, and 256 KB each of
// instruction and data cache.
type Config struct {
	ICache      CacheConfig
	DCache      CacheConfig
	MissPenalty int
	MulLatency  int
	DivLatency  int
}

// DefaultConfig returns the Cyclone/R timing model.
func DefaultConfig() Config {
	return Config{
		ICache:      CacheConfig{SizeBytes: 256 << 10, LineBytes: 16},
		DCache:      CacheConfig{SizeBytes: 256 << 10, LineBytes: 16},
		MissPenalty: 12,
		MulLatency:  12,
		DivLatency:  35,
	}
}

type cache struct {
	tags      []uint32
	valid     []bool
	lineShift uint
	mask      uint32
}

func newCache(c CacheConfig) *cache {
	if c.SizeBytes == 0 {
		return nil
	}
	lines := c.SizeBytes / c.LineBytes
	sh := uint(0)
	for 1<<sh < c.LineBytes {
		sh++
	}
	return &cache{
		tags:      make([]uint32, lines),
		valid:     make([]bool, lines),
		lineShift: sh,
		mask:      uint32(lines - 1),
	}
}

// access returns true on a hit.
func (c *cache) access(addr uint32) bool {
	line := addr >> c.lineShift
	idx := line & c.mask
	if c.valid[idx] && c.tags[idx] == line {
		return true
	}
	c.valid[idx] = true
	c.tags[idx] = line
	return false
}

// CodeWindowBase maps the code space read-only into the data address
// space: a LW at CodeWindowBase+4i reads code word i (translated CASE
// tables are stored in the code stream and read through this window).
const CodeWindowBase = 0x01000000

// Sim is the RISC processor simulator. Code is held separately from data
// memory; PC values are word indexes into Code, and register-held code
// addresses (for JR/JALR) are byte addresses, i.e. 4 times the word index.
type Sim struct {
	// CPU is the backend-shared simulator state (code, memory, the 32
	// registers, PC, stop/breakpoint/observation protocol); embedding it
	// keeps the historical s.Reg / s.PC / s.Stopped spellings working
	// and satisfies the backend.Sim interface's Core method.
	backend.CPU

	HI uint32
	LO uint32

	LoadStalls   int64
	MDStalls     int64
	ICacheMisses int64
	DCacheMisses int64

	cfg     Config
	icache  *cache
	dcache  *cache
	skipBP  bool
	npc     uint32
	loadReg int   // register written by the immediately preceding load
	mdReady int64 // cycle at which HI/LO become available
	uses    []uint8
}

// NewSim creates a simulator with the given code, a data memory of memBytes
// bytes, and timing config.
func NewSim(code []uint32, memBytes int, cfg Config) *Sim {
	return &Sim{
		CPU: backend.CPU{
			Code: code,
			Mem:  make([]byte, memBytes),
		},
		cfg:     cfg,
		icache:  newCache(cfg.ICache),
		dcache:  newCache(cfg.DCache),
		loadReg: -1,
	}
}

// ResumeAt clears the stop condition and continues execution at the given
// word index on the next Run.
func (s *Sim) ResumeAt(pc uint32) {
	s.PC = pc
	s.npc = pc + 1
	s.Stopped = false
	s.BreakCode = 0
	s.Trap = TrapNone
	s.loadReg = -1
	s.BPHit = false
	s.skipBP = true
}

func (s *Sim) trap(code int) {
	s.Trap = code
	s.TrapPC = s.PC
	s.Stopped = true
}

// Run executes instructions until a BREAK, a trap, or the cycle budget is
// exhausted (0 means unlimited). It returns an error only on runaway
// execution past the budget.
func (s *Sim) Run(maxInstrs int64) error {
	if s.npc == 0 {
		s.npc = s.PC + 1
	}
	start := s.Instrs
	for !s.Stopped {
		s.step()
		if maxInstrs > 0 && s.Instrs-start >= maxInstrs {
			return fmt.Errorf("risc: exceeded %d instructions at PC=%d", maxInstrs, s.PC)
		}
	}
	return nil
}

func (s *Sim) step() {
	pc := s.PC
	if s.Breakpoints != nil && s.Breakpoints[pc] && !s.skipBP {
		s.BPHit = true
		s.Stopped = true
		return
	}
	s.skipBP = false
	if int(pc) >= len(s.Code) {
		s.trap(TrapBadInstr)
		return
	}
	if s.icache != nil && !s.icache.access(pc<<2) {
		s.ICacheMisses++
		s.Cycles += int64(s.cfg.MissPenalty)
	}
	w := s.Code[pc]
	in := Decode(w)
	s.Cycles++
	s.Instrs++
	if s.OnInstr != nil {
		s.OnInstr(pc)
	}

	// Load-use interlock: one stall cycle if this instruction reads the
	// register the previous instruction loaded.
	if s.loadReg >= 0 {
		s.uses = in.Uses(s.uses[:0])
		for _, u := range s.uses {
			if int(u) == s.loadReg {
				s.Cycles++
				s.LoadStalls++
				break
			}
		}
		s.loadReg = -1
	}

	nextNPC := s.npc + 1
	R := &s.Reg
	switch in.Op {
	case SLL:
		R[in.Rd] = R[in.Rt] << in.Shamt
	case SRL:
		R[in.Rd] = R[in.Rt] >> in.Shamt
	case SRA:
		R[in.Rd] = uint32(int32(R[in.Rt]) >> in.Shamt)
	case SLLV:
		R[in.Rd] = R[in.Rt] << (R[in.Rs] & 31)
	case SRLV:
		R[in.Rd] = R[in.Rt] >> (R[in.Rs] & 31)
	case SRAV:
		R[in.Rd] = uint32(int32(R[in.Rt]) >> (R[in.Rs] & 31))
	case ADD:
		a, b := R[in.Rs], R[in.Rt]
		sum := a + b
		if (a^sum)&(b^sum)&0x80000000 != 0 {
			s.trap(TrapOverflow)
			return
		}
		R[in.Rd] = sum
	case ADDU:
		R[in.Rd] = R[in.Rs] + R[in.Rt]
	case SUB:
		a, b := R[in.Rs], R[in.Rt]
		diff := a - b
		if (a^b)&(a^diff)&0x80000000 != 0 {
			s.trap(TrapOverflow)
			return
		}
		R[in.Rd] = diff
	case SUBU:
		R[in.Rd] = R[in.Rs] - R[in.Rt]
	case AND:
		R[in.Rd] = R[in.Rs] & R[in.Rt]
	case OR:
		R[in.Rd] = R[in.Rs] | R[in.Rt]
	case XOR:
		R[in.Rd] = R[in.Rs] ^ R[in.Rt]
	case NOR:
		R[in.Rd] = ^(R[in.Rs] | R[in.Rt])
	case SLT:
		R[in.Rd] = b2u(int32(R[in.Rs]) < int32(R[in.Rt]))
	case SLTU:
		R[in.Rd] = b2u(R[in.Rs] < R[in.Rt])
	case ADDI:
		a, b := R[in.Rs], uint32(in.Imm)
		sum := a + b
		if (a^sum)&(b^sum)&0x80000000 != 0 {
			s.trap(TrapOverflow)
			return
		}
		R[in.Rt] = sum
	case ADDIU:
		R[in.Rt] = R[in.Rs] + uint32(in.Imm)
	case SLTI:
		R[in.Rt] = b2u(int32(R[in.Rs]) < in.Imm)
	case SLTIU:
		R[in.Rt] = b2u(R[in.Rs] < uint32(in.Imm))
	case ANDI:
		R[in.Rt] = R[in.Rs] & uint32(in.Imm)
	case ORI:
		R[in.Rt] = R[in.Rs] | uint32(in.Imm)
	case XORI:
		R[in.Rt] = R[in.Rs] ^ uint32(in.Imm)
	case LUI:
		R[in.Rt] = uint32(in.Imm) << 16
	case LB, LH, LW, LBU, LHU:
		if !s.load(in) {
			return
		}
	case SB, SH, SW:
		if !s.storeOp(in) {
			return
		}
	case BEQ:
		if R[in.Rs] == R[in.Rt] {
			nextNPC = s.branchTarget(in)
		}
	case BNE:
		if R[in.Rs] != R[in.Rt] {
			nextNPC = s.branchTarget(in)
		}
	case BLEZ:
		if int32(R[in.Rs]) <= 0 {
			nextNPC = s.branchTarget(in)
		}
	case BGTZ:
		if int32(R[in.Rs]) > 0 {
			nextNPC = s.branchTarget(in)
		}
	case BLTZ:
		if int32(R[in.Rs]) < 0 {
			nextNPC = s.branchTarget(in)
		}
	case BGEZ:
		if int32(R[in.Rs]) >= 0 {
			nextNPC = s.branchTarget(in)
		}
	case J:
		nextNPC = in.Target
	case JAL:
		R[RegRA] = (s.npc + 1) << 2
		nextNPC = in.Target
	case JR:
		nextNPC = R[in.Rs] >> 2
	case JALR:
		R[in.Rd] = (s.npc + 1) << 2
		nextNPC = R[in.Rs] >> 2
	case MULT:
		p := int64(int32(R[in.Rs])) * int64(int32(R[in.Rt]))
		s.LO = uint32(p)
		s.HI = uint32(p >> 32)
		s.mdReady = s.Cycles + int64(s.cfg.MulLatency)
	case MULTU:
		p := uint64(R[in.Rs]) * uint64(R[in.Rt])
		s.LO = uint32(p)
		s.HI = uint32(p >> 32)
		s.mdReady = s.Cycles + int64(s.cfg.MulLatency)
	case DIV:
		a, b := int32(R[in.Rs]), int32(R[in.Rt])
		if b != 0 && !(a == -2147483648 && b == -1) {
			s.LO = uint32(a / b)
			s.HI = uint32(a % b)
		} else if b != 0 {
			s.LO = uint32(a)
			s.HI = 0
		}
		s.mdReady = s.Cycles + int64(s.cfg.DivLatency)
	case DIVU:
		a, b := R[in.Rs], R[in.Rt]
		if b != 0 {
			s.LO = a / b
			s.HI = a % b
		}
		s.mdReady = s.Cycles + int64(s.cfg.DivLatency)
	case MFHI:
		s.mdStall()
		R[in.Rd] = s.HI
	case MFLO:
		s.mdStall()
		R[in.Rd] = s.LO
	case SYSCALL:
		if s.OnSyscall != nil {
			s.OnSyscall(&s.CPU, in.Target)
		}
	case BREAK:
		s.BreakCode = in.Target
		s.Stopped = true
		return // PC stays at the BREAK for the host to inspect
	default:
		s.trap(TrapBadInstr)
		return
	}
	R[0] = 0
	s.PC = s.npc
	s.npc = nextNPC
}

func (s *Sim) mdStall() {
	if s.Cycles < s.mdReady {
		s.MDStalls += s.mdReady - s.Cycles
		s.Cycles = s.mdReady
	}
}

func (s *Sim) branchTarget(in Instr) uint32 {
	// Target is relative to the instruction after the branch, whose word
	// index is s.npc (the delay slot) plus... in MIPS terms the target is
	// delay-slot address + 4*imm, i.e. (branch word index + 1) + imm.
	return s.PC + 1 + uint32(in.Imm)
}

func (s *Sim) dAccess(addr uint32) {
	if s.dcache != nil && !s.dcache.access(addr) {
		s.DCacheMisses++
		s.Cycles += int64(s.cfg.MissPenalty)
	}
}

func (s *Sim) load(in Instr) bool {
	addr := s.Reg[in.Rs] + uint32(in.Imm)
	var v uint32
	switch in.Op {
	case LB, LBU:
		if int(addr) >= len(s.Mem) {
			s.trap(TrapAddress)
			return false
		}
		v = uint32(s.Mem[addr])
		if in.Op == LB {
			v = uint32(int32(int8(v)))
		}
	case LH, LHU:
		if addr&1 != 0 || int(addr)+1 >= len(s.Mem) {
			s.trap(TrapAddress)
			return false
		}
		v = uint32(s.Mem[addr])<<8 | uint32(s.Mem[addr+1])
		if in.Op == LH {
			v = uint32(int32(int16(v)))
		}
	case LW:
		if addr >= CodeWindowBase {
			idx := (addr - CodeWindowBase) >> 2
			if addr&3 != 0 || int(idx) >= len(s.Code) {
				s.trap(TrapAddress)
				return false
			}
			v = s.Code[idx]
			s.Reg[in.Rt] = v
			s.loadReg = int(in.Rt)
			return true
		}
		if addr&3 != 0 || int(addr)+3 >= len(s.Mem) {
			s.trap(TrapAddress)
			return false
		}
		v = uint32(s.Mem[addr])<<24 | uint32(s.Mem[addr+1])<<16 |
			uint32(s.Mem[addr+2])<<8 | uint32(s.Mem[addr+3])
	}
	s.dAccess(addr)
	s.Reg[in.Rt] = v
	s.loadReg = int(in.Rt)
	return true
}

func (s *Sim) storeOp(in Instr) bool {
	addr := s.Reg[in.Rs] + uint32(in.Imm)
	if s.ProtectedHi > s.ProtectedLo && addr >= s.ProtectedLo && addr < s.ProtectedHi {
		s.trap(TrapProtected)
		return false
	}
	v := s.Reg[in.Rt]
	switch in.Op {
	case SB:
		if int(addr) >= len(s.Mem) {
			s.trap(TrapAddress)
			return false
		}
		s.Mem[addr] = byte(v)
		if s.StoreTrace != nil {
			// Report the containing halfword so byte stores compare
			// against the interpreter's word-level trace.
			ha := addr &^ 1
			s.StoreTrace(ha, uint16(s.Mem[ha])<<8|uint16(s.Mem[ha+1]))
		}
	case SH:
		if addr&1 != 0 || int(addr)+1 >= len(s.Mem) {
			s.trap(TrapAddress)
			return false
		}
		s.Mem[addr] = byte(v >> 8)
		s.Mem[addr+1] = byte(v)
		if s.StoreTrace != nil {
			s.StoreTrace(addr, uint16(v))
		}
	case SW:
		if addr&3 != 0 || int(addr)+3 >= len(s.Mem) {
			s.trap(TrapAddress)
			return false
		}
		s.Mem[addr] = byte(v >> 24)
		s.Mem[addr+1] = byte(v >> 16)
		s.Mem[addr+2] = byte(v >> 8)
		s.Mem[addr+3] = byte(v)
	}
	s.dAccess(addr)
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
