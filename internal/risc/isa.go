// Package risc implements the TNS/R target: a MIPS-R3000-like 32-register
// load/store architecture with one branch delay slot, load-use interlock
// stalls, multi-cycle multiply/divide, and a simple cache model — the
// machine the Accelerator's code generator and scheduler target, and the
// engine of the NonStop Cyclone/R model.
//
// The instruction encoding follows classic MIPS-I: R-type (opcode 0 plus
// function code), I-type, and J-type words. Only the subset the translator
// and millicode need is implemented; undefined encodings raise a simulator
// fault.
//
// Register convention (fixed by the Accelerator's emulation scheme, per the
// paper: eight dedicated registers hold the TNS register stack, seven hold
// special TNS state, fourteen are translator temporaries):
//
//	$0          $z     always zero
//	$1..$8      $r0..$r7   the emulated TNS register barrel
//	$9          $db    data base: byte address of TNS data word 0
//	$10         $l     TNS L register as a byte offset (L*2)
//	$11         $s     TNS S register as a byte offset (S*2)
//	$12         $cc    condition code as a signed value (<0, 0, >0)
//	$13         $k     carry flag (0/1)
//	$14         $v     overflow flag (0/1)
//	$15         $env   packed ENV: RP in bits 0..2, T in bit 7, space bit 8
//	$16..$29    $t0..$t13  Accelerator temporaries
//	$30         $mt    millicode linkage temporary
//	$31         $ra    return address (JAL/JALR)
package risc

import "tnsr/internal/backend"

// Dedicated register numbers (see the package comment). The convention is
// the cross-backend TNS/R emulation scheme's; the canonical definitions
// live in the backend package and are aliased here for the encoder's and
// assembler's convenience.
const (
	RegZero = backend.RegZero
	RegR0   = backend.RegR0 // TNS R0; TNS Rn is RegR0+n
	RegDB   = backend.RegDB
	RegL    = backend.RegL
	RegS    = backend.RegS
	RegCC   = backend.RegCC
	RegK    = backend.RegK
	RegV    = backend.RegV
	RegENV  = backend.RegENV
	RegT0   = backend.RegT0 // first of NumTemp temporaries
	NumTemp = backend.NumTemp
	RegMT   = backend.RegMT
	RegRA   = backend.RegRA
)

// Opcodes (bits 31..26).
const (
	opSpecial = 0x00
	opRegimm  = 0x01
	opJ       = 0x02
	opJAL     = 0x03
	opBEQ     = 0x04
	opBNE     = 0x05
	opBLEZ    = 0x06
	opBGTZ    = 0x07
	opADDI    = 0x08
	opADDIU   = 0x09
	opSLTI    = 0x0A
	opSLTIU   = 0x0B
	opANDI    = 0x0C
	opORI     = 0x0D
	opXORI    = 0x0E
	opLUI     = 0x0F
	opLB      = 0x20
	opLH      = 0x21
	opLW      = 0x23
	opLBU     = 0x24
	opLHU     = 0x25
	opSB      = 0x28
	opSH      = 0x29
	opSW      = 0x2B
)

// R-type function codes (opcode 0, bits 5..0).
const (
	fnSLL     = 0x00
	fnSRL     = 0x02
	fnSRA     = 0x03
	fnSLLV    = 0x04
	fnSRLV    = 0x06
	fnSRAV    = 0x07
	fnJR      = 0x08
	fnJALR    = 0x09
	fnSYSCALL = 0x0C
	fnBREAK   = 0x0D
	fnMFHI    = 0x10
	fnMFLO    = 0x12
	fnMULT    = 0x18
	fnMULTU   = 0x19
	fnDIV     = 0x1A
	fnDIVU    = 0x1B
	fnADD     = 0x20
	fnADDU    = 0x21
	fnSUB     = 0x22
	fnSUBU    = 0x23
	fnAND     = 0x24
	fnOR      = 0x25
	fnXOR     = 0x26
	fnNOR     = 0x27
	fnSLT     = 0x2A
	fnSLTU    = 0x2B
)

// REGIMM rt codes.
const (
	rtBLTZ = 0x00
	rtBGEZ = 0x01
)

// Op is the virtual operation set shared with the backend seam. The MIPS
// backend encodes it 1:1 (this package is that encoding); the constants
// are aliased so existing risc.* spellings keep working.
type Op = backend.Op

const (
	INVALID = backend.INVALID
	SLL     = backend.SLL
	SRL     = backend.SRL
	SRA     = backend.SRA
	SLLV    = backend.SLLV
	SRLV    = backend.SRLV
	SRAV    = backend.SRAV
	JR      = backend.JR
	JALR    = backend.JALR
	SYSCALL = backend.SYSCALL
	BREAK   = backend.BREAK
	MFHI    = backend.MFHI
	MFLO    = backend.MFLO
	MULT    = backend.MULT
	MULTU   = backend.MULTU
	DIV     = backend.DIV
	DIVU    = backend.DIVU
	ADD     = backend.ADD
	ADDU    = backend.ADDU
	SUB     = backend.SUB
	SUBU    = backend.SUBU
	AND     = backend.AND
	OR      = backend.OR
	XOR     = backend.XOR
	NOR     = backend.NOR
	SLT     = backend.SLT
	SLTU    = backend.SLTU
	J       = backend.J
	JAL     = backend.JAL
	BEQ     = backend.BEQ
	BNE     = backend.BNE
	BLEZ    = backend.BLEZ
	BGTZ    = backend.BGTZ
	BLTZ    = backend.BLTZ
	BGEZ    = backend.BGEZ
	ADDI    = backend.ADDI
	ADDIU   = backend.ADDIU
	SLTI    = backend.SLTI
	SLTIU   = backend.SLTIU
	ANDI    = backend.ANDI
	ORI     = backend.ORI
	XORI    = backend.XORI
	LUI     = backend.LUI
	LB      = backend.LB
	LH      = backend.LH
	LW      = backend.LW
	LBU     = backend.LBU
	LHU     = backend.LHU
	SB      = backend.SB
	SH      = backend.SH
	SW      = backend.SW
	NumOps  = backend.NumOps
)

// Instr is a decoded RISC instruction.
type Instr struct {
	Op         Op
	Rs, Rt, Rd uint8
	Shamt      uint8
	Imm        int32  // sign- or zero-extended per the operation
	Target     uint32 // J/JAL word index; BREAK/SYSCALL code
}

// Decode unpacks an instruction word.
func Decode(w uint32) Instr {
	op := w >> 26
	rs := uint8(w >> 21 & 31)
	rt := uint8(w >> 16 & 31)
	rd := uint8(w >> 11 & 31)
	sh := uint8(w >> 6 & 31)
	fn := w & 63
	simm := int32(int16(w))
	zimm := int32(w & 0xFFFF)
	switch op {
	case opSpecial:
		in := Instr{Rs: rs, Rt: rt, Rd: rd, Shamt: sh}
		switch fn {
		case fnSLL:
			in.Op = SLL
		case fnSRL:
			in.Op = SRL
		case fnSRA:
			in.Op = SRA
		case fnSLLV:
			in.Op = SLLV
		case fnSRLV:
			in.Op = SRLV
		case fnSRAV:
			in.Op = SRAV
		case fnJR:
			in.Op = JR
		case fnJALR:
			in.Op = JALR
		case fnSYSCALL:
			in.Op = SYSCALL
			in.Target = w >> 6 & 0xFFFFF
		case fnBREAK:
			in.Op = BREAK
			in.Target = w >> 6 & 0xFFFFF
		case fnMFHI:
			in.Op = MFHI
		case fnMFLO:
			in.Op = MFLO
		case fnMULT:
			in.Op = MULT
		case fnMULTU:
			in.Op = MULTU
		case fnDIV:
			in.Op = DIV
		case fnDIVU:
			in.Op = DIVU
		case fnADD:
			in.Op = ADD
		case fnADDU:
			in.Op = ADDU
		case fnSUB:
			in.Op = SUB
		case fnSUBU:
			in.Op = SUBU
		case fnAND:
			in.Op = AND
		case fnOR:
			in.Op = OR
		case fnXOR:
			in.Op = XOR
		case fnNOR:
			in.Op = NOR
		case fnSLT:
			in.Op = SLT
		case fnSLTU:
			in.Op = SLTU
		}
		return in
	case opRegimm:
		in := Instr{Rs: rs, Imm: simm}
		switch rt {
		case rtBLTZ:
			in.Op = BLTZ
		case rtBGEZ:
			in.Op = BGEZ
		}
		return in
	case opJ:
		return Instr{Op: J, Target: w & 0x3FFFFFF}
	case opJAL:
		return Instr{Op: JAL, Target: w & 0x3FFFFFF}
	case opBEQ:
		return Instr{Op: BEQ, Rs: rs, Rt: rt, Imm: simm}
	case opBNE:
		return Instr{Op: BNE, Rs: rs, Rt: rt, Imm: simm}
	case opBLEZ:
		return Instr{Op: BLEZ, Rs: rs, Imm: simm}
	case opBGTZ:
		return Instr{Op: BGTZ, Rs: rs, Imm: simm}
	case opADDI:
		return Instr{Op: ADDI, Rs: rs, Rt: rt, Imm: simm}
	case opADDIU:
		return Instr{Op: ADDIU, Rs: rs, Rt: rt, Imm: simm}
	case opSLTI:
		return Instr{Op: SLTI, Rs: rs, Rt: rt, Imm: simm}
	case opSLTIU:
		return Instr{Op: SLTIU, Rs: rs, Rt: rt, Imm: simm}
	case opANDI:
		return Instr{Op: ANDI, Rs: rs, Rt: rt, Imm: zimm}
	case opORI:
		return Instr{Op: ORI, Rs: rs, Rt: rt, Imm: zimm}
	case opXORI:
		return Instr{Op: XORI, Rs: rs, Rt: rt, Imm: zimm}
	case opLUI:
		return Instr{Op: LUI, Rt: rt, Imm: zimm}
	case opLB:
		return Instr{Op: LB, Rs: rs, Rt: rt, Imm: simm}
	case opLH:
		return Instr{Op: LH, Rs: rs, Rt: rt, Imm: simm}
	case opLW:
		return Instr{Op: LW, Rs: rs, Rt: rt, Imm: simm}
	case opLBU:
		return Instr{Op: LBU, Rs: rs, Rt: rt, Imm: simm}
	case opLHU:
		return Instr{Op: LHU, Rs: rs, Rt: rt, Imm: simm}
	case opSB:
		return Instr{Op: SB, Rs: rs, Rt: rt, Imm: simm}
	case opSH:
		return Instr{Op: SH, Rs: rs, Rt: rt, Imm: simm}
	case opSW:
		return Instr{Op: SW, Rs: rs, Rt: rt, Imm: simm}
	}
	return Instr{}
}

// Encoders. All take register numbers and panic on out-of-range fields;
// they serve the translator's code emitter and the assembler.

func rtype(fn uint32, rs, rt, rd, sh uint8) uint32 {
	return uint32(rs&31)<<21 | uint32(rt&31)<<16 |
		uint32(rd&31)<<11 | uint32(sh&31)<<6 | fn
}

func itype(op uint32, rs, rt uint8, imm int32) uint32 {
	return op<<26 | uint32(rs&31)<<21 | uint32(rt&31)<<16 |
		uint32(uint16(imm))
}

// EncALU encodes a three-register ALU operation (ADD..SLTU and the
// variable shifts).
func EncALU(op Op, rd, rs, rt uint8) uint32 {
	var fn uint32
	switch op {
	case ADD:
		fn = fnADD
	case ADDU:
		fn = fnADDU
	case SUB:
		fn = fnSUB
	case SUBU:
		fn = fnSUBU
	case AND:
		fn = fnAND
	case OR:
		fn = fnOR
	case XOR:
		fn = fnXOR
	case NOR:
		fn = fnNOR
	case SLT:
		fn = fnSLT
	case SLTU:
		fn = fnSLTU
	case SLLV:
		fn = fnSLLV
	case SRLV:
		fn = fnSRLV
	case SRAV:
		fn = fnSRAV
	default:
		panic("risc: EncALU bad op " + op.String())
	}
	switch op {
	case SLLV, SRLV, SRAV:
		// Shift amount register is rs in the encoding's rs field; the
		// value shifted is rt.
		return rtype(fn, rs, rt, rd, 0)
	}
	return rtype(fn, rs, rt, rd, 0)
}

// EncShift encodes an immediate shift.
func EncShift(op Op, rd, rt, shamt uint8) uint32 {
	var fn uint32
	switch op {
	case SLL:
		fn = fnSLL
	case SRL:
		fn = fnSRL
	case SRA:
		fn = fnSRA
	default:
		panic("risc: EncShift bad op " + op.String())
	}
	return rtype(fn, 0, rt, rd, shamt)
}

// EncImm encodes an immediate ALU operation or LUI.
func EncImm(op Op, rt, rs uint8, imm int32) uint32 {
	var o uint32
	switch op {
	case ADDI:
		o = opADDI
	case ADDIU:
		o = opADDIU
	case SLTI:
		o = opSLTI
	case SLTIU:
		o = opSLTIU
	case ANDI:
		o = opANDI
	case ORI:
		o = opORI
	case XORI:
		o = opXORI
	case LUI:
		return itype(opLUI, 0, rt, imm)
	default:
		panic("risc: EncImm bad op " + op.String())
	}
	return itype(o, rs, rt, imm)
}

// EncMem encodes a load or store.
func EncMem(op Op, rt, base uint8, off int32) uint32 {
	var o uint32
	switch op {
	case LB:
		o = opLB
	case LH:
		o = opLH
	case LW:
		o = opLW
	case LBU:
		o = opLBU
	case LHU:
		o = opLHU
	case SB:
		o = opSB
	case SH:
		o = opSH
	case SW:
		o = opSW
	default:
		panic("risc: EncMem bad op " + op.String())
	}
	if off < -32768 || off > 32767 {
		panic("risc: EncMem offset out of range")
	}
	return itype(o, base, rt, off)
}

// EncBranch encodes a conditional branch with a signed word displacement
// relative to the instruction after the branch.
func EncBranch(op Op, rs, rt uint8, disp int32) uint32 {
	if disp < -32768 || disp > 32767 {
		panic("risc: branch displacement out of range")
	}
	switch op {
	case BEQ:
		return itype(opBEQ, rs, rt, disp)
	case BNE:
		return itype(opBNE, rs, rt, disp)
	case BLEZ:
		return itype(opBLEZ, rs, 0, disp)
	case BGTZ:
		return itype(opBGTZ, rs, 0, disp)
	case BLTZ:
		return itype(opRegimm, rs, rtBLTZ, disp)
	case BGEZ:
		return itype(opRegimm, rs, rtBGEZ, disp)
	}
	panic("risc: EncBranch bad op " + op.String())
}

// EncJ encodes J or JAL to an absolute word index.
func EncJ(op Op, target uint32) uint32 {
	if target > 0x3FFFFFF {
		panic("risc: jump target out of range")
	}
	switch op {
	case J:
		return opJ<<26 | target
	case JAL:
		return opJAL<<26 | target
	}
	panic("risc: EncJ bad op " + op.String())
}

// EncJR and EncJALR encode register jumps.
func EncJR(rs uint8) uint32 { return rtype(fnJR, rs, 0, 0, 0) }

// EncJALR encodes jalr rd, rs.
func EncJALR(rd, rs uint8) uint32 { return rtype(fnJALR, rs, 0, rd, 0) }

// EncMulDiv encodes MULT/MULTU/DIV/DIVU (rs, rt) and MFHI/MFLO (rd).
func EncMulDiv(op Op, a, b uint8) uint32 {
	switch op {
	case MULT:
		return rtype(fnMULT, a, b, 0, 0)
	case MULTU:
		return rtype(fnMULTU, a, b, 0, 0)
	case DIV:
		return rtype(fnDIV, a, b, 0, 0)
	case DIVU:
		return rtype(fnDIVU, a, b, 0, 0)
	case MFHI:
		return rtype(fnMFHI, 0, 0, a, 0)
	case MFLO:
		return rtype(fnMFLO, 0, 0, a, 0)
	}
	panic("risc: EncMulDiv bad op " + op.String())
}

// EncBreak encodes BREAK with a 20-bit code.
func EncBreak(code uint32) uint32 {
	return rtype(fnBREAK, 0, 0, 0, 0) | (code&0xFFFFF)<<6
}

// EncSyscall encodes SYSCALL with a 20-bit code.
func EncSyscall(code uint32) uint32 {
	return rtype(fnSYSCALL, 0, 0, 0, 0) | (code&0xFFFFF)<<6
}

// NOP is the canonical no-op (sll $0,$0,0).
const NOP uint32 = 0
