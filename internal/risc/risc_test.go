package risc

import (
	"testing"
	"testing/quick"
	"tnsr/internal/backend"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []uint32{
		EncALU(ADDU, 5, 6, 7),
		EncALU(SLT, 1, 2, 3),
		EncALU(SLLV, 4, 9, 8),
		EncShift(SLL, 3, 4, 15),
		EncShift(SRA, 3, 4, 1),
		EncImm(ADDIU, 2, 3, -100),
		EncImm(ORI, 2, 3, 0xFFFF),
		EncImm(LUI, 2, 0, 0x1234),
		EncMem(LW, 8, 9, -4),
		EncMem(SH, 8, 9, 32766),
		EncBranch(BEQ, 1, 2, -5),
		EncBranch(BLTZ, 1, 0, 100),
		EncBranch(BGEZ, 1, 0, -1),
		EncJ(J, 12345),
		EncJ(JAL, 1),
		EncJR(31),
		EncJALR(30, 2),
		EncMulDiv(MULT, 3, 4),
		EncMulDiv(MFLO, 5, 0),
		EncBreak(77),
		EncSyscall(3),
	}
	for _, w := range cases {
		in := Decode(w)
		if in.Op == INVALID {
			t.Errorf("word %08x decodes to INVALID", w)
		}
	}
	// Specific field checks.
	in := Decode(EncImm(ADDIU, 2, 3, -100))
	if in.Op != ADDIU || in.Rt != 2 || in.Rs != 3 || in.Imm != -100 {
		t.Errorf("ADDIU: %+v", in)
	}
	in = Decode(EncMem(LW, 8, 9, -4))
	if in.Op != LW || in.Rt != 8 || in.Rs != 9 || in.Imm != -4 {
		t.Errorf("LW: %+v", in)
	}
	in = Decode(EncBreak(77))
	if in.Op != BREAK || in.Target != 77 {
		t.Errorf("BREAK: %+v", in)
	}
	in = Decode(EncBranch(BGEZ, 1, 0, -1))
	if in.Op != BGEZ || in.Rs != 1 || in.Imm != -1 {
		t.Errorf("BGEZ: %+v", in)
	}
}

func TestImmRoundTripProperty(t *testing.T) {
	f := func(rt, rs uint8, imm int16) bool {
		in := Decode(EncImm(ADDIU, rt&31, rs&31, int32(imm)))
		return in.Rt == rt&31 && in.Rs == rs&31 && in.Imm == int32(imm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func runAsm(t *testing.T, src string, maxInstrs int64) *Sim {
	t.Helper()
	code, _, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(code, 1<<16, Config{MulLatency: 12, DivLatency: 35})
	if err := s.Run(maxInstrs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimArithmetic(t *testing.T) {
	s := runAsm(t, `
  li $t0, 7
  li $t1, 5
  addu $t2, $t0, $t1
  subu $t3, $t0, $t1
  and  $t4, $t0, $t1
  or   $t5, $t0, $t1
  xor  $t6, $t0, $t1
  slt  $t7, $t1, $t0
  break 0
`, 100)
	want := map[uint8]uint32{
		RegT0 + 2: 12, RegT0 + 3: 2, RegT0 + 4: 5, RegT0 + 5: 7,
		RegT0 + 6: 2, RegT0 + 7: 1,
	}
	for r, v := range want {
		if s.Reg[r] != v {
			t.Errorf("%s = %d, want %d", RegName(r), s.Reg[r], v)
		}
	}
}

func TestSimMemoryBigEndian(t *testing.T) {
	s := runAsm(t, `
  li $t0, 0x1234
  sh $t0, 0x100($z)
  lbu $t1, 0x100($z)
  lbu $t2, 0x101($z)
  lh  $t3, 0x100($z)
  li $t4, 0xDEADBEEF
  sw $t4, 0x104($z)
  lw $t5, 0x104($z)
  break 0
`, 100)
	if s.Reg[RegT0+1] != 0x12 || s.Reg[RegT0+2] != 0x34 {
		t.Errorf("bytes: %x %x", s.Reg[RegT0+1], s.Reg[RegT0+2])
	}
	if s.Reg[RegT0+3] != 0x1234 {
		t.Errorf("lh = %x", s.Reg[RegT0+3])
	}
	if s.Reg[RegT0+5] != 0xDEADBEEF {
		t.Errorf("lw = %x", s.Reg[RegT0+5])
	}
}

func TestSimSignExtension(t *testing.T) {
	s := runAsm(t, `
  li $t0, 0x80FF
  sh $t0, 0x100($z)
  lh  $t1, 0x100($z)
  lhu $t2, 0x100($z)
  lb  $t3, 0x100($z)
  break 0
`, 100)
	if s.Reg[RegT0+1] != 0xFFFF80FF {
		t.Errorf("lh sign extension = %x", s.Reg[RegT0+1])
	}
	if s.Reg[RegT0+2] != 0x80FF {
		t.Errorf("lhu = %x", s.Reg[RegT0+2])
	}
	if s.Reg[RegT0+3] != 0xFFFFFF80 {
		t.Errorf("lb = %x", s.Reg[RegT0+3])
	}
}

func TestSimBranchDelaySlot(t *testing.T) {
	// The instruction after a taken branch always executes.
	s := runAsm(t, `
  li $t0, 1
  beq $z, $z, target
  li $t1, 42     ; delay slot: executes
  li $t2, 99     ; skipped
target:
  break 0
`, 100)
	if s.Reg[RegT0+1] != 42 {
		t.Error("delay slot did not execute")
	}
	if s.Reg[RegT0+2] == 99 {
		t.Error("branch did not skip")
	}
}

func TestSimJALAndJR(t *testing.T) {
	s := runAsm(t, `
  jal sub
  nop            ; delay slot
  break 0
sub:
  li $t0, 5
  jr $ra
  li $t1, 6      ; delay slot of jr
`, 100)
	if s.Reg[RegT0] != 5 || s.Reg[RegT0+1] != 6 {
		t.Errorf("t0=%d t1=%d", s.Reg[RegT0], s.Reg[RegT0+1])
	}
	if s.BreakCode != 0 || !s.Stopped {
		t.Error("did not stop at break")
	}
}

func TestSimLoop(t *testing.T) {
	// Sum 1..10.
	s := runAsm(t, `
  li $t0, 0      ; sum
  li $t1, 1      ; i
loop:
  addu $t0, $t0, $t1
  addiu $t1, $t1, 1
  slti $t2, $t1, 11
  bne $t2, $z, loop
  nop
  break 0
`, 1000)
	if s.Reg[RegT0] != 55 {
		t.Errorf("sum = %d", s.Reg[RegT0])
	}
}

func TestSimMultDiv(t *testing.T) {
	s := runAsm(t, `
  li $t0, -6
  li $t1, 7
  mult $t0, $t1
  mflo $t2       ; -42
  li $t3, 43
  li $t4, 10
  div $t3, $t4
  mflo $t5       ; 4
  mfhi $t6       ; 3
  break 0
`, 100)
	if int32(s.Reg[RegT0+2]) != -42 {
		t.Errorf("mult = %d", int32(s.Reg[RegT0+2]))
	}
	if s.Reg[RegT0+5] != 4 || s.Reg[RegT0+6] != 3 {
		t.Errorf("div = %d rem %d", s.Reg[RegT0+5], s.Reg[RegT0+6])
	}
	if s.MDStalls == 0 {
		t.Error("expected multiply/divide stalls")
	}
}

func TestSimLoadUseStall(t *testing.T) {
	s := runAsm(t, `
  sh $z, 0x100($z)
  lh $t0, 0x100($z)
  addu $t1, $t0, $t0   ; uses t0 right after load: stall
  break 0
`, 100)
	if s.LoadStalls != 1 {
		t.Errorf("load stalls = %d, want 1", s.LoadStalls)
	}
	s2 := runAsm(t, `
  sh $z, 0x100($z)
  lh $t0, 0x100($z)
  nop
  addu $t1, $t0, $t0   ; gap filled: no stall
  break 0
`, 100)
	if s2.LoadStalls != 0 {
		t.Errorf("load stalls = %d, want 0", s2.LoadStalls)
	}
}

func TestSimOverflowTrap(t *testing.T) {
	s := runAsm(t, `
  lui $t0, 0x7FFF
  ori $t0, $t0, 0xFFFF
  addi $t1, $t0, 1
  break 0
`, 100)
	if s.Trap != TrapOverflow {
		t.Errorf("trap = %d, want overflow", s.Trap)
	}
}

func TestSimAddressTrap(t *testing.T) {
	s := runAsm(t, `
  li $t0, 0x101
  lh $t1, 0($t0)   ; unaligned halfword
  break 0
`, 100)
	if s.Trap != TrapAddress {
		t.Errorf("trap = %d, want address", s.Trap)
	}
}

func TestSimSyscallHook(t *testing.T) {
	code, _, err := Assemble(`
  li $t0, 65
  syscall 1
  break 0
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(code, 1<<12, Config{})
	var got []uint32
	s.OnSyscall = func(s *backend.CPU, c uint32) {
		got = append(got, c, s.Reg[RegT0])
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 65 {
		t.Errorf("syscall hook got %v", got)
	}
}

func TestSimCacheCounting(t *testing.T) {
	cfg := Config{
		ICache:      CacheConfig{SizeBytes: 64, LineBytes: 16},
		DCache:      CacheConfig{SizeBytes: 64, LineBytes: 16},
		MissPenalty: 10,
	}
	code, _, err := Assemble(`
  li $t0, 0
  li $t1, 0
loop:
  lh $t2, 0x1000($t1)
  addiu $t1, $t1, 256  ; stride larger than the tiny cache: always miss
  slti $t3, $t1, 2048
  bne $t3, $z, loop
  nop
  break 0
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(code, 1<<16, cfg)
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.DCacheMisses < 8 {
		t.Errorf("dcache misses = %d, want >= 8", s.DCacheMisses)
	}
	if s.Cycles <= s.Instrs {
		t.Error("miss penalties should add cycles")
	}
}

func TestSimStoreTrace(t *testing.T) {
	code, _, err := Assemble(`
  li $t0, 0x1234
  sh $t0, 0x100($z)
  sb $t0, 0x103($z)
  break 0
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(code, 1<<12, Config{})
	var trace []uint64
	s.StoreTrace = func(a uint32, v uint16) {
		trace = append(trace, uint64(a)<<16|uint64(v))
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != 0x100<<16|0x1234 || trace[1] != 0x102<<16|0x0034 {
		t.Errorf("trace = %x", trace)
	}
}

func TestSimBreakResumeAt(t *testing.T) {
	code, _, err := Assemble(`
  li $t0, 1
  break 5
  li $t0, 2
  break 6
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(code, 1<<12, Config{})
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.BreakCode != 5 || s.Reg[RegT0] != 1 {
		t.Fatalf("first break: code=%d t0=%d", s.BreakCode, s.Reg[RegT0])
	}
	s.ResumeAt(s.PC + 1)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.BreakCode != 6 || s.Reg[RegT0] != 2 {
		t.Errorf("second break: code=%d t0=%d", s.BreakCode, s.Reg[RegT0])
	}
}

func TestDefUse(t *testing.T) {
	in := Decode(EncMem(LW, 5, 6, 0))
	if in.Def() != 5 {
		t.Error("LW def")
	}
	if u := in.Uses(nil); len(u) != 1 || u[0] != 6 {
		t.Error("LW uses")
	}
	in = Decode(EncMem(SW, 5, 6, 0))
	if in.Def() != -1 {
		t.Error("SW has no def")
	}
	if u := in.Uses(nil); len(u) != 2 {
		t.Error("SW uses")
	}
	in = Decode(EncALU(ADDU, 1, 2, 3))
	if in.Def() != 1 {
		t.Error("ADDU def")
	}
	in = Decode(EncJ(JAL, 0))
	if in.Def() != RegRA {
		t.Error("JAL defines $ra")
	}
	if !Decode(EncMulDiv(MULT, 1, 2)).WritesHILO() {
		t.Error("MULT writes HILO")
	}
	if !Decode(EncMulDiv(MFLO, 1, 0)).ReadsHILO() {
		t.Error("MFLO reads HILO")
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := map[uint32]string{
		NOP:                                 "nop",
		EncALU(ADDU, RegT0, RegR0, RegR0+1): "addu $t0, $r0, $r1",
		EncMem(LH, RegT0, RegDB, 10):        "lh $t0, 10($db)",
		EncJR(RegRA):                        "jr $ra",
		EncBreak(3):                         "break 3",
		EncImm(LUI, RegT1(), 0, 5):          "lui $t1, 5",
	}
	for w, want := range cases {
		if got := Disassemble(0, w); got != want {
			t.Errorf("Disassemble(%08x) = %q, want %q", w, got, want)
		}
	}
}

func RegT1() uint8 { return RegT0 + 1 }

// TestAsmSimRoundTrip: branches both directions assemble to correct targets.
func TestAsmBranchTargets(t *testing.T) {
	code, labels, err := Assemble(`
start:
  nop
  bne $t0, $z, start
  nop
  beq $t0, $z, fwd
  nop
  nop
fwd:
  break 0
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if labels["start"] != 0 || labels["fwd"] != 6 {
		t.Fatalf("labels: %v", labels)
	}
	in := Decode(code[1])
	if got := int64(1) + 1 + int64(in.Imm); got != 0 {
		t.Errorf("backward branch target = %d", got)
	}
	in = Decode(code[3])
	if got := int64(3) + 1 + int64(in.Imm); got != 6 {
		t.Errorf("forward branch target = %d", got)
	}
}

func TestAsmExtern(t *testing.T) {
	code, _, err := Assemble(`
  li $t0, PMAP_BASE
  lw $t1, TABLE($z)
`, map[string]uint32{"PMAP_BASE": 0x20000, "TABLE": 0x44})
	if err != nil {
		t.Fatal(err)
	}
	if len(code) < 2 {
		t.Fatal("short code")
	}
	in := Decode(code[len(code)-1])
	if in.Op != LW || in.Imm != 0x44 {
		t.Errorf("extern in mem operand: %+v", in)
	}
}

func TestAsmErrors(t *testing.T) {
	for _, src := range []string{
		"frobnicate $t0",
		"addu $t0, $qq, $t1",
		"lw $t0, nope",
		"dup: nop\ndup: nop",
	} {
		if _, _, err := Assemble(src, nil); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
