package risc

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates RISC assembly text into instruction words. It exists
// for the hand-coded millicode routines and for tests. Supported syntax:
//
//	label:                     define a label (word index)
//	op operands  ; comment     one instruction, operands comma-separated
//	.word n                    a raw data word
//
// Operands use the register names of RegName ($z, $r0..$r7, $db, $l, $s,
// $cc, $k, $v, $env, $t0..$t13, $mt, $ra, or $N numeric). Memory operands
// are "off(base)". Branch and jump targets are labels or absolute word
// indexes. Pseudo-instructions: nop, move, li (32-bit constant via
// lui/ori), b (branch always), not, neg.
//
// extern provides named constants (runtime table addresses) usable wherever
// an immediate or li operand is expected.
func Assemble(src string, extern map[string]uint32) ([]uint32, map[string]uint32, error) {
	a := &rasm{labels: map[string]uint32{}, extern: extern}
	// Pass 1: measure, collect labels.
	if err := a.scan(src, false); err != nil {
		return nil, nil, err
	}
	a.out = make([]uint32, 0, a.pc)
	a.pc = 0
	// Pass 2: emit.
	if err := a.scan(src, true); err != nil {
		return nil, nil, err
	}
	return a.out, a.labels, nil
}

// MustAssemble panics on error; for fixed millicode sources.
func MustAssemble(src string, extern map[string]uint32) ([]uint32, map[string]uint32) {
	code, labels, err := Assemble(src, extern)
	if err != nil {
		panic(err)
	}
	return code, labels
}

type rasm struct {
	labels map[string]uint32
	extern map[string]uint32
	out    []uint32
	pc     uint32
	emit   bool
}

func (a *rasm) scan(src string, emit bool) error {
	a.emit = emit
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t(") {
				break
			}
			if !emit {
				if _, dup := a.labels[line[:i]]; dup {
					return fmt.Errorf("line %d: duplicate label %q", ln+1, line[:i])
				}
				a.labels[line[:i]] = a.pc
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.instr(line); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return nil
}

func (a *rasm) put(w uint32) {
	if a.emit {
		a.out = append(a.out, w)
	}
	a.pc++
}

func (a *rasm) instr(line string) error {
	fields := strings.Fields(line)
	op := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	ops := splitOperands(rest)
	switch op {
	case ".word":
		v, err := a.imm(ops[0])
		if err != nil {
			return err
		}
		a.put(uint32(v))
		return nil
	case "nop":
		a.put(NOP)
		return nil
	case "move":
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncALU(ADDU, rd, rs, RegZero))
		return nil
	case "not":
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncALU(NOR, rd, rs, RegZero))
		return nil
	case "neg":
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncALU(SUBU, rd, RegZero, rs))
		return nil
	case "li":
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		a.emitLI(rd, uint32(v))
		return nil
	case "b":
		disp, err := a.branchDisp(ops[0])
		if err != nil {
			return err
		}
		a.put(EncBranch(BEQ, RegZero, RegZero, disp))
		return nil
	}

	if o, ok := aluOps[op]; ok {
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		// Immediate forms are accepted for addu/and/or/xor/slt/sltu by
		// rewriting to the immediate opcode.
		if len(ops) == 3 && !isReg(ops[2]) {
			imm, err := a.imm(ops[2])
			if err != nil {
				return err
			}
			iop, ok := immFor[o]
			if !ok {
				return fmt.Errorf("%s does not take an immediate", op)
			}
			if (iop == ANDI || iop == ORI || iop == XORI) && (imm < 0 || imm > 0xFFFF) {
				return fmt.Errorf("%s immediate %d out of range", op, imm)
			}
			if (iop == ADDIU || iop == ADDI || iop == SLTI || iop == SLTIU) &&
				(imm < -32768 || imm > 32767) {
				return fmt.Errorf("%s immediate %d out of range", op, imm)
			}
			a.put(EncImm(iop, rd, rs, int32(imm)))
			return nil
		}
		rt, err := a.reg(ops[2])
		if err != nil {
			return err
		}
		if o == SLLV || o == SRLV || o == SRAV {
			// "sllv rd, rt, rs": value first, then shift-amount register.
			a.put(EncALU(o, rd, rt, rs))
			return nil
		}
		a.put(EncALU(o, rd, rs, rt))
		return nil
	}
	if o, ok := immOps[op]; ok {
		rt, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		if o == LUI {
			v, err := a.imm(ops[1])
			if err != nil {
				return err
			}
			a.put(EncImm(LUI, rt, 0, int32(v)))
			return nil
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[2])
		if err != nil {
			return err
		}
		a.put(EncImm(o, rt, rs, int32(v)))
		return nil
	}
	if o, ok := shiftOps[op]; ok {
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[2])
		if err != nil {
			return err
		}
		a.put(EncShift(o, rd, rt, uint8(v)))
		return nil
	}
	if o, ok := memOps[op]; ok {
		rt, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		a.put(EncMem(o, rt, base, off))
		return nil
	}
	switch op {
	case "beq", "bne":
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(ops[2])
		if err != nil {
			return err
		}
		o := BEQ
		if op == "bne" {
			o = BNE
		}
		a.put(EncBranch(o, rs, rt, disp))
		return nil
	case "blez", "bgtz", "bltz", "bgez":
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(ops[1])
		if err != nil {
			return err
		}
		o := map[string]Op{"blez": BLEZ, "bgtz": BGTZ, "bltz": BLTZ, "bgez": BGEZ}[op]
		a.put(EncBranch(o, rs, 0, disp))
		return nil
	case "j", "jal":
		t, err := a.jumpTarget(ops[0])
		if err != nil {
			return err
		}
		o := J
		if op == "jal" {
			o = JAL
		}
		a.put(EncJ(o, t))
		return nil
	case "jr":
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.put(EncJR(rs))
		return nil
	case "jalr":
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncJALR(rd, rs))
		return nil
	case "mult", "multu", "div", "divu":
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		o := map[string]Op{"mult": MULT, "multu": MULTU, "div": DIV, "divu": DIVU}[op]
		a.put(EncMulDiv(o, rs, rt))
		return nil
	case "mfhi", "mflo":
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		o := MFHI
		if op == "mflo" {
			o = MFLO
		}
		a.put(EncMulDiv(o, rd, 0))
		return nil
	case "break", "syscall":
		var code int64
		if len(ops) > 0 && ops[0] != "" {
			v, err := a.imm(ops[0])
			if err != nil {
				return err
			}
			code = v
		}
		if op == "break" {
			a.put(EncBreak(uint32(code)))
		} else {
			a.put(EncSyscall(uint32(code)))
		}
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

func (a *rasm) emitLI(rd uint8, v uint32) {
	if v <= 0xFFFF {
		a.put(EncImm(ORI, rd, RegZero, int32(v)))
		return
	}
	if int32(v) >= -32768 && int32(v) < 0 {
		a.put(EncImm(ADDIU, rd, RegZero, int32(v)))
		return
	}
	a.put(EncImm(LUI, rd, 0, int32(v>>16)))
	if v&0xFFFF != 0 {
		a.put(EncImm(ORI, rd, rd, int32(v&0xFFFF)))
	}
}

var aluOps = map[string]Op{
	"add": ADD, "addu": ADDU, "sub": SUB, "subu": SUBU, "and": AND,
	"or": OR, "xor": XOR, "nor": NOR, "slt": SLT, "sltu": SLTU,
	"sllv": SLLV, "srlv": SRLV, "srav": SRAV,
}

var immFor = map[Op]Op{
	ADD: ADDI, ADDU: ADDIU, AND: ANDI, OR: ORI, XOR: XORI,
	SLT: SLTI, SLTU: SLTIU,
}

var immOps = map[string]Op{
	"addi": ADDI, "addiu": ADDIU, "slti": SLTI, "sltiu": SLTIU,
	"andi": ANDI, "ori": ORI, "xori": XORI, "lui": LUI,
}

var shiftOps = map[string]Op{"sll": SLL, "srl": SRL, "sra": SRA}

var memOps = map[string]Op{
	"lb": LB, "lh": LH, "lw": LW, "lbu": LBU, "lhu": LHU,
	"sb": SB, "sh": SH, "sw": SW,
}

var regNames = func() map[string]uint8 {
	m := map[string]uint8{}
	for r := uint8(0); r < 32; r++ {
		m[RegName(r)] = r
		m[fmt.Sprintf("$%d", r)] = r
	}
	return m
}()

func isReg(s string) bool {
	_, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	return ok
}

func (a *rasm) reg(s string) (uint8, error) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return r, nil
}

func (a *rasm) imm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.extern[s]; ok {
		return int64(v), nil
	}
	if l, ok := a.labels[s]; ok {
		return int64(l), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var v int64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseInt(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseInt(s, 10, 64)
	}
	if err != nil {
		if !a.emit {
			return 0, nil // labels may be forward references in pass 1
		}
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (a *rasm) memOperand(s string) (int32, uint8, error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '(')
	j := strings.IndexByte(s, ')')
	if i < 0 || j < i {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if i > 0 {
		v, err := a.imm(s[:i])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := a.reg(s[i+1 : j])
	if err != nil {
		return 0, 0, err
	}
	return int32(off), base, nil
}

func (a *rasm) branchDisp(s string) (int32, error) {
	t, err := a.imm(s)
	if err != nil {
		return 0, err
	}
	if !a.emit {
		return 0, nil
	}
	return int32(t) - int32(a.pc) - 1, nil
}

func (a *rasm) jumpTarget(s string) (uint32, error) {
	t, err := a.imm(s)
	if err != nil {
		return 0, err
	}
	return uint32(t), nil
}

func splitOperands(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
