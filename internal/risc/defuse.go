package risc

// Def returns the general register the instruction writes, or -1. HI/LO
// effects are reported by WritesHILO.
func (in Instr) Def() int {
	switch in.Op {
	case SLL, SRL, SRA, SLLV, SRLV, SRAV, ADD, ADDU, SUB, SUBU, AND, OR,
		XOR, NOR, SLT, SLTU, MFHI, MFLO:
		return int(in.Rd)
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LUI, LB, LH, LW, LBU,
		LHU:
		return int(in.Rt)
	case JAL:
		return RegRA
	case JALR:
		return int(in.Rd)
	}
	return -1
}

// Uses appends the general registers the instruction reads to dst and
// returns it.
func (in Instr) Uses(dst []uint8) []uint8 {
	switch in.Op {
	case SLL, SRL, SRA:
		return append(dst, in.Rt)
	case SLLV, SRLV, SRAV:
		return append(dst, in.Rs, in.Rt)
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU, MULT, MULTU,
		DIV, DIVU:
		return append(dst, in.Rs, in.Rt)
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return append(dst, in.Rs)
	case LB, LH, LW, LBU, LHU:
		return append(dst, in.Rs)
	case SB, SH, SW:
		return append(dst, in.Rs, in.Rt)
	case BEQ, BNE:
		return append(dst, in.Rs, in.Rt)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return append(dst, in.Rs)
	case JR:
		return append(dst, in.Rs)
	case JALR:
		return append(dst, in.Rs)
	}
	return dst
}

// WritesHILO reports whether the instruction writes the HI/LO registers.
func (in Instr) WritesHILO() bool {
	switch in.Op {
	case MULT, MULTU, DIV, DIVU:
		return true
	}
	return false
}

// ReadsHILO reports whether the instruction reads HI or LO.
func (in Instr) ReadsHILO() bool { return in.Op == MFHI || in.Op == MFLO }
