package risc

import (
	"fmt"

	"tnsr/internal/backend"
)

// RegName returns the assembler name of a register under the Accelerator's
// dedicated-register convention (shared across backends).
func RegName(r uint8) string { return backend.RegName(r) }

// Disassemble renders the instruction at word index pc.
func Disassemble(pc uint32, w uint32) string {
	in := Decode(w)
	r := RegName
	switch in.Op {
	case INVALID:
		if w == NOP {
			return "nop"
		}
		return fmt.Sprintf(".word 0x%08x", w)
	case SLL, SRL, SRA:
		if w == NOP {
			return "nop"
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rt), in.Shamt)
	case SLLV, SRLV, SRAV:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rt), r(in.Rs))
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs), r(in.Rt))
	case JR:
		return fmt.Sprintf("jr %s", r(in.Rs))
	case JALR:
		return fmt.Sprintf("jalr %s, %s", r(in.Rd), r(in.Rs))
	case SYSCALL, BREAK:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case MFHI, MFLO:
		return fmt.Sprintf("%s %s", in.Op, r(in.Rd))
	case MULT, MULTU, DIV, DIVU:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.Rs), r(in.Rt))
	case J, JAL:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case BEQ, BNE:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rs), r(in.Rt),
			int64(pc)+1+int64(in.Imm))
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Rs),
			int64(pc)+1+int64(in.Imm))
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rt), r(in.Rs), in.Imm)
	case LUI:
		return fmt.Sprintf("lui %s, %d", r(in.Rt), in.Imm)
	case LB, LH, LW, LBU, LHU, SB, SH, SW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rt), in.Imm, r(in.Rs))
	}
	return fmt.Sprintf(".word 0x%08x", w)
}
