// Package fleet is the run-host: thousands of concurrent simulated TNS
// machines, each a private interpreter/simulator pair executing the ET1
// transaction workload in mixed mode against one shared, immutable,
// accelerated codefile image — the deployment shape the paper's migration
// argues for, where a single translated system image serves a whole fleet
// of NonStop nodes. The host aggregates every machine's telemetry into one
// fleet report (mode residency, escape histograms, throughput, latency
// percentiles), closes the PGO loop through a profile service, and proves
// the degradation story under load: a corrupt codefile on one machine
// degrades that machine alone, never the fleet.
package fleet

import (
	"bytes"
	"fmt"
	"math/rand"

	"tnsr/internal/codefile"
	"tnsr/internal/interp"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/xrun"
)

// State is one machine's condition at the end of a round.
type State int

const (
	// Serving: the machine ran its transactions in mixed mode and its
	// output matched the interpreter reference.
	Serving State = iota
	// Degraded: the machine served its transactions, but fully (or
	// partially) interpreted — its acceleration was rejected at load or
	// verification time, or quarantined at run time. Output still matched.
	Degraded
	// Failed: the machine could not serve — its run errored, or its output
	// diverged from the reference and was withheld.
	Failed

	numStates
)

var stateNames = [numStates]string{"serving", "degraded", "failed"}

func (s State) String() string {
	if s >= 0 && s < numStates {
		return stateNames[s]
	}
	return "invalid"
}

// reference is the ground truth every machine's output is checked against:
// the pure interpreter's behavior on the pristine program.
type reference struct {
	Console string
	Exit    uint16
	Trap    int
}

// machineResult is what one machine hands back to the host for one round.
type machineResult struct {
	id          int
	state       State
	stateReason string

	// report and capture are nil for Failed machines: diverged telemetry
	// must not pollute the fleet aggregate.
	report  *obs.Report
	capture *pgo.Profile

	txns    int64
	elapsed float64 // simulated seconds, first arrival to last completion
	lat     *Hist   // per-transaction latency, nanoseconds of simulated time

	pushErr error
}

// machineSpec is everything one machine needs for one round. The user/lib
// files are the SHARED fleet image for standard machines (read-only by
// contract: xrun.New, interp.New and the recorder all copy what they
// mutate) and private parsed images for chaos machines.
type machineSpec struct {
	id       int
	workload string
	user     *codefile.File
	lib      *codefile.File
	ref      reference
	cfg      risc.Config
	budget   int64
	txns     int
	traffic  Traffic
	rng      *rand.Rand
	source   xrun.ProfileSource // nil: no push
	// chaosDegraded marks a machine whose private image was rejected at
	// parse time and which therefore serves interpreted from the pristine
	// CISC image; the runner won't know, so the spec carries the reason.
	chaosDegraded string
}

// runMachine executes one machine's round: build the runtime image, run
// the transactions mixed-mode, verify the output against the interpreter
// reference, price the run into an open-loop latency distribution, and
// push the PGO capture. Any panic is contained to this machine — the
// degradation contract under fleet concurrency.
func runMachine(spec *machineSpec, slots chan struct{}) (res *machineResult) {
	res = &machineResult{id: spec.id, state: Serving}
	defer func() {
		if p := recover(); p != nil {
			res.state = Failed
			res.stateReason = fmt.Sprintf("panic: %v", p)
			res.report, res.capture = nil, nil
		}
	}()

	// The slot gate bounds how many simulator images (about 1.2 MiB each:
	// a 1 MiB RISC memory plus the interpreter's 128 KiB data space) are
	// resident at once. Every machine's goroutine exists concurrently —
	// arrival schedules are in simulated time, so queueing behavior is
	// unaffected by when the slot opens.
	slots <- struct{}{}
	defer func() { <-slots }()

	r, err := xrun.New(spec.user, spec.lib, spec.cfg)
	if err != nil {
		res.state = Failed
		res.stateReason = "load: " + err.Error()
		return res
	}
	rec := obs.NewRecorder()
	r.Observe(rec)
	cap := pgo.NewCapture()
	r.Capture(cap)

	if err := r.Run(spec.budget); err != nil {
		res.state = Failed
		res.stateReason = "run: " + err.Error()
		return res
	}

	// The oracle: whatever mode mixture the machine ran in — accelerated,
	// quarantined, degraded, or mutated — its observable behavior must be
	// the pristine interpreter's. A divergent machine is withheld from the
	// fleet entirely.
	if !r.Halted || r.Console() != spec.ref.Console ||
		r.ExitStatus != spec.ref.Exit || r.Trap != spec.ref.Trap {
		res.state = Failed
		res.stateReason = fmt.Sprintf("output diverged (halted=%v trap=%d exit=%d)",
			r.Halted, r.Trap, r.ExitStatus)
		return res
	}

	rep := r.Report(rec)
	rep.Workload = spec.workload
	if spec.chaosDegraded != "" {
		rep.Degraded = true
		if rep.DegradedReason != "" {
			rep.DegradedReason += "; "
		}
		rep.DegradedReason += spec.chaosDegraded
	}
	res.report = rep
	res.capture = cap.Profile()
	if rep.Degraded || len(rep.Quarantined) > 0 {
		res.state = Degraded
		res.stateReason = rep.DegradedReason
		if res.stateReason == "" {
			res.stateReason = fmt.Sprintf("%d procs quarantined", len(rep.Quarantined))
		}
	}

	res.txns, res.elapsed, res.lat = simulateArrivals(spec, r)

	// Close the PGO loop. Only healthy machines advise the fleet: a
	// degraded machine's capture describes interpreter-only execution of
	// a rejected image, which is noise to the aggregate. Push failures
	// are advisory (the run already happened) but are surfaced.
	if spec.source != nil && res.state == Serving {
		if _, err := spec.source.Push(res.capture); err != nil {
			res.pushErr = err
		}
	}
	return res
}

// simulateArrivals prices the machine's run into an open-loop queueing
// simulation. The mixed-mode run executed all transactions back to back;
// its priced wall time gives the per-transaction service time S on this
// machine (a degraded machine's S is several times larger — exactly the
// latency penalty the fleet report should show). Transactions arrive on
// the machine's seeded schedule whether or not the server is free, so
// completion_i = max(arrival_i, completion_{i-1}) + S and the sojourn
// times feed the latency histogram.
func simulateArrivals(spec *machineSpec, r *xrun.Runner) (txns int64, elapsed float64, lat *Hist) {
	n := spec.txns
	if n < 1 {
		n = 1
	}
	totalCycles, _, _ := r.Cycles()
	s := totalCycles / (clockMHz * 1e6) / float64(n) // service seconds per txn

	lat = &Hist{}
	gaps := spec.traffic.gaps(spec.rng, n)
	var arrival, completion float64
	for _, g := range gaps {
		arrival += g
		start := arrival
		if completion > start {
			start = completion
		}
		completion = start + s
		lat.Record(int64((completion - arrival) * 1e9))
	}
	return int64(n), completion, lat
}

// interpReference characterizes the pristine program under the pure
// interpreter: the behavior every fleet machine must reproduce.
func interpReference(user, lib *codefile.File, budget int64) (reference, error) {
	m := interp.New(user, lib)
	if err := m.Run(budget); err != nil {
		return reference{}, fmt.Errorf("fleet: reference run: %w", err)
	}
	return reference{Console: m.Console.String(), Exit: m.ExitStatus, Trap: m.Trap}, nil
}

// parseImage loads one serialized codefile; it is how chaos machines get
// their private (possibly mutated) images.
func parseImage(raw []byte) (*codefile.File, error) {
	return codefile.Read(bytes.NewReader(raw))
}

// accelFree returns a shallow copy of f with its acceleration dropped:
// the pristine CISC image a machine falls back to when its own image is
// rejected. The copy shares the underlying code/data slices read-only.
func accelFree(f *codefile.File) *codefile.File {
	if f == nil {
		return nil
	}
	c := *f
	c.Accel = nil
	return &c
}
