package fleet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistIndexRoundTrip: every value lands in a bucket whose midpoint is
// within the advertised relative error.
func TestHistIndexRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1 << 20, 123456789, 1 << 40}
	for _, v := range vals {
		i := histIndex(v)
		got := histValue(i)
		tol := float64(v) / histSubBuckets
		if tol < 1 {
			tol = 1
		}
		if math.Abs(float64(got-v)) > tol {
			t.Errorf("value %d -> bucket %d -> %d (tol %g)", v, i, got, tol)
		}
	}
	// Bucket indexes are monotonic in the value.
	prev := -1
	for v := int64(0); v < 100000; v += 37 {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("index regressed at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

// TestHistQuantilesAgainstExact compares quantiles to the exact sorted
// sample within the histogram's error bound.
func TestHistQuantilesAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h Hist
	samples := make([]int64, 10000)
	for i := range samples {
		v := int64(rng.ExpFloat64() * 2e6) // ~exponential around 2ms-in-ns
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if math.Abs(float64(got-exact)) > float64(exact)/10+2 {
			t.Errorf("q%g: got %d, exact %d", q, got, exact)
		}
	}
	if h.Max() != samples[len(samples)-1] {
		t.Errorf("max %d, want %d", h.Max(), samples[len(samples)-1])
	}
	if h.Quantile(1) > h.Max() {
		t.Errorf("q1 %d exceeds max %d", h.Quantile(1), h.Max())
	}
}

// TestHistMergeEquivalence: merging shards equals recording everything
// into one histogram.
func TestHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var whole Hist
	shards := make([]*Hist, 8)
	for i := range shards {
		shards[i] = &Hist{}
	}
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 30))
		whole.Record(v)
		shards[i%len(shards)].Record(v)
	}
	var merged Hist
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() ||
		merged.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: %d/%d %d/%d", merged.Count(), whole.Count(),
			merged.Max(), whole.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%g: merged %d, whole %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHistEmpty: a fresh histogram answers zeros, not panics.
func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Merge(nil)
	h.Record(-5) // clamps to 0
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Fatal("negative record not clamped")
	}
}

// TestTrafficMeanRate: the arrival process hits its configured mean rate
// for every burstiness shape, and is seed-deterministic.
func TestTrafficMeanRate(t *testing.T) {
	for _, b := range []float64{0, 0.5, 1, 4} {
		tr := Traffic{RateTPS: 20, Burstiness: b}
		gaps := tr.gaps(rand.New(rand.NewSource(3)), 20000)
		var sum float64
		for _, g := range gaps {
			if g < 0 {
				t.Fatalf("negative gap %g", g)
			}
			sum += g
		}
		mean := sum / float64(len(gaps))
		if want := 1.0 / 20; math.Abs(mean-want)/want > 0.1 {
			t.Errorf("burstiness %g: mean gap %g, want ~%g", b, mean, want)
		}
		again := tr.gaps(rand.New(rand.NewSource(3)), 20000)
		for i := range gaps {
			if gaps[i] != again[i] {
				t.Fatalf("burstiness %g: gaps not deterministic at %d", b, i)
			}
		}
	}
	// Think time adds straight onto the mean.
	tr := Traffic{RateTPS: 20, ThinkSeconds: 0.5}
	gaps := tr.gaps(rand.New(rand.NewSource(4)), 10000)
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	if mean := sum / float64(len(gaps)); math.Abs(mean-0.55) > 0.02 {
		t.Errorf("think time: mean gap %g, want ~0.55", mean)
	}
}

// TestTrafficBurstinessShapesVariance: higher burstiness means higher
// coefficient of variation at the same mean.
func TestTrafficBurstinessShapesVariance(t *testing.T) {
	cv := func(b float64) float64 {
		gaps := Traffic{RateTPS: 10, Burstiness: b}.gaps(rand.New(rand.NewSource(8)), 20000)
		var sum, sq float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		for _, g := range gaps {
			sq += (g - mean) * (g - mean)
		}
		return math.Sqrt(sq/float64(len(gaps))) / mean
	}
	smooth, poisson, bursty := cv(0.3), cv(1), cv(6)
	if !(smooth < poisson && poisson < bursty) {
		t.Fatalf("cv ordering: smooth %g, poisson %g, bursty %g", smooth, poisson, bursty)
	}
}
