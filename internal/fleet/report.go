package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tnsr/internal/obs"
)

// FleetSchema identifies the fleet report JSON format; bump on
// incompatible change.
const FleetSchema = "tnsr/fleet-report/v1"

// FleetReport is one whole fleet run: configuration echo plus one
// RoundReport per round. The last round is the fleet's final state.
type FleetReport struct {
	Schema         string `json:"schema"`
	Workload       string `json:"workload"`
	Machines       int    `json:"machines"`
	TxnsPerMachine int    `json:"txns_per_machine"`
	ChaosMachines  int    `json:"chaos_machines,omitempty"`
	Level          string `json:"level"`
	Seed           int64  `json:"seed"`

	Rounds []RoundReport `json:"rounds"`
}

// RoundReport aggregates one round across every machine.
type RoundReport struct {
	Round int `json:"round"`

	// Obs is the merged telemetry of every machine that served (Serving
	// and Degraded); Failed machines are withheld.
	Obs *obs.Report `json:"obs"`

	Txns          int64        `json:"txns"`
	ThroughputTPS float64      `json:"throughput_tps"`
	Latency       LatencyStats `json:"latency"`

	MachineStates MachineStates    `json:"machine_states"`
	Failures      []MachineFailure `json:"failures,omitempty"`

	PushErrs    int   `json:"push_errs,omitempty"`
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`

	// SourceBreaker snapshots the shared profile-source circuit breaker at
	// the end of the round; nil when no profile source is configured.
	// Counters are cumulative across rounds.
	SourceBreaker *BreakerSnapshot `json:"source_breaker,omitempty"`
}

// BreakerSnapshot is one circuit breaker's end-of-round view.
type BreakerSnapshot struct {
	State     string `json:"state"`
	Opens     int64  `json:"opens"`
	FastFails int64  `json:"fast_fails"`
	Probes    int64  `json:"probes"`
}

// MachineStates counts machines by end-of-round state.
type MachineStates struct {
	Serving  int `json:"serving"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
}

// MachineFailure names one machine the fleet withheld and why.
type MachineFailure struct {
	Machine int    `json:"machine"`
	Reason  string `json:"reason"`
}

// LatencyStats summarizes the merged per-transaction latency histogram,
// in milliseconds of simulated time.
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func latencyStats(h *Hist) LatencyStats {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return LatencyStats{
		Count:  h.Count(),
		MeanMs: h.Mean() / 1e6,
		P50Ms:  ms(h.Quantile(0.50)),
		P95Ms:  ms(h.Quantile(0.95)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
	}
}

// Validate checks the report's cross-field invariants; the JSON writer
// refuses to emit a report that fails them.
func (fr *FleetReport) Validate() error {
	if fr.Schema != FleetSchema {
		return fmt.Errorf("fleet: schema %q, want %q", fr.Schema, FleetSchema)
	}
	if fr.Machines < 1 {
		return fmt.Errorf("fleet: %d machines", fr.Machines)
	}
	if len(fr.Rounds) == 0 {
		return fmt.Errorf("fleet: no rounds")
	}
	for i, rr := range fr.Rounds {
		if rr.Round != i+1 {
			return fmt.Errorf("fleet: round %d numbered %d", i+1, rr.Round)
		}
		ms := rr.MachineStates
		if ms.Serving+ms.Degraded+ms.Failed != fr.Machines {
			return fmt.Errorf("fleet: round %d states %d+%d+%d != %d machines",
				rr.Round, ms.Serving, ms.Degraded, ms.Failed, fr.Machines)
		}
		if len(rr.Failures) != ms.Failed {
			return fmt.Errorf("fleet: round %d lists %d failures for %d failed machines",
				rr.Round, len(rr.Failures), ms.Failed)
		}
		if rr.Txns < 0 || rr.ThroughputTPS < 0 {
			return fmt.Errorf("fleet: round %d negative throughput", rr.Round)
		}
		l := rr.Latency
		if l.P50Ms > l.P95Ms || l.P95Ms > l.P99Ms || l.P99Ms > l.MaxMs {
			return fmt.Errorf("fleet: round %d latency quantiles out of order (%g/%g/%g/%g)",
				rr.Round, l.P50Ms, l.P95Ms, l.P99Ms, l.MaxMs)
		}
		if rr.Obs == nil {
			return fmt.Errorf("fleet: round %d has no merged report", rr.Round)
		}
		if err := obs.Validate(rr.Obs); err != nil {
			return fmt.Errorf("fleet: round %d: %w", rr.Round, err)
		}
	}
	return nil
}

// JSON renders the validated report.
func (fr *FleetReport) JSON() ([]byte, error) {
	if err := fr.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(fr, "", "  ")
}

// Final returns the last round — the fleet's current state.
func (fr *FleetReport) Final() *RoundReport {
	if len(fr.Rounds) == 0 {
		return nil
	}
	return &fr.Rounds[len(fr.Rounds)-1]
}

// WriteText renders the human-readable fleet summary.
func (fr *FleetReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d machines x %d %s txns, level %s, seed %d\n",
		fr.Machines, fr.TxnsPerMachine, fr.Workload, fr.Level, fr.Seed)
	if fr.ChaosMachines > 0 {
		fmt.Fprintf(w, "chaos: %d machines under mutation\n", fr.ChaosMachines)
	}
	for _, rr := range fr.Rounds {
		ms := rr.MachineStates
		fmt.Fprintf(w, "round %d: %d txns  %.1f txn/s  serving %d  degraded %d  failed %d\n",
			rr.Round, rr.Txns, rr.ThroughputTPS, ms.Serving, ms.Degraded, ms.Failed)
		l := rr.Latency
		fmt.Fprintf(w, "  latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
			l.MeanMs, l.P50Ms, l.P95Ms, l.P99Ms, l.MaxMs)
		m := rr.Obs.Modes
		fmt.Fprintf(w, "  modes: %.2f%% interpreted  %d interludes  %d switches\n",
			100*m.InterpFraction, m.Interludes, m.Switches)
		for _, e := range rr.Obs.Escapes {
			fmt.Fprintf(w, "  escape %-14s %d\n", e.Reason, e.Count)
		}
		for _, f := range rr.Failures {
			fmt.Fprintf(w, "  failed machine %d: %s\n", f.Machine, f.Reason)
		}
	}
}

// WritePrometheus renders the final round in the Prometheus text
// exposition format: the tnsfleetd /metrics surface. Every escape reason
// in the enum is emitted — including zero counts — so an alert (or the CI
// smoke grep) can assert `tnsr_fleet_escapes_total{reason="unknown"} 0`
// rather than inferring health from absence.
func (fr *FleetReport) WritePrometheus(w io.Writer) {
	rr := fr.Final()
	if rr == nil {
		return
	}
	obs.PromHeader(w, "tnsr_fleet_info", "gauge", "Fleet identity (constant 1).")
	fmt.Fprintf(w, "tnsr_fleet_info{workload=%q,level=%q} 1\n",
		obs.PromEscape(fr.Workload), obs.PromEscape(fr.Level))

	obs.PromHeader(w, "tnsr_fleet_machines", "gauge", "Machines by end-of-round state.")
	ms := rr.MachineStates
	fmt.Fprintf(w, "tnsr_fleet_machines{state=\"serving\"} %d\n", ms.Serving)
	fmt.Fprintf(w, "tnsr_fleet_machines{state=\"degraded\"} %d\n", ms.Degraded)
	fmt.Fprintf(w, "tnsr_fleet_machines{state=\"failed\"} %d\n", ms.Failed)

	obs.PromHeader(w, "tnsr_fleet_round", "gauge", "Completed fleet rounds.")
	fmt.Fprintf(w, "tnsr_fleet_round %d\n", rr.Round)

	obs.PromHeader(w, "tnsr_fleet_txns_total", "counter", "Transactions served in the final round.")
	fmt.Fprintf(w, "tnsr_fleet_txns_total %d\n", rr.Txns)

	obs.PromHeader(w, "tnsr_fleet_throughput_tps", "gauge", "Aggregate fleet throughput, transactions per simulated second.")
	fmt.Fprintf(w, "tnsr_fleet_throughput_tps %g\n", rr.ThroughputTPS)

	obs.PromHeader(w, "tnsr_fleet_latency_seconds", "gauge", "Per-transaction latency quantiles, simulated seconds.")
	l := rr.Latency
	fmt.Fprintf(w, "tnsr_fleet_latency_seconds{quantile=\"0.5\"} %g\n", l.P50Ms/1e3)
	fmt.Fprintf(w, "tnsr_fleet_latency_seconds{quantile=\"0.95\"} %g\n", l.P95Ms/1e3)
	fmt.Fprintf(w, "tnsr_fleet_latency_seconds{quantile=\"0.99\"} %g\n", l.P99Ms/1e3)
	obs.PromHeader(w, "tnsr_fleet_latency_seconds_max", "gauge", "Worst per-transaction latency, simulated seconds.")
	fmt.Fprintf(w, "tnsr_fleet_latency_seconds_max %g\n", l.MaxMs/1e3)

	obs.PromHeader(w, "tnsr_fleet_interp_fraction", "gauge", "Fleet-wide fraction of cycles spent in interpreter mode.")
	fmt.Fprintf(w, "tnsr_fleet_interp_fraction %g\n", rr.Obs.Modes.InterpFraction)

	obs.PromHeader(w, "tnsr_fleet_escapes_total", "counter", "Fleet-wide escapes from translated code by reason.")
	counts := map[string]int64{}
	for _, e := range rr.Obs.Escapes {
		counts[e.Reason] = e.Count
	}
	for r := obs.EscapeReason(0); r < obs.NumEscapeReasons; r++ {
		name := r.String()
		fmt.Fprintf(w, "tnsr_fleet_escapes_total{reason=%q} %d\n", name, counts[name])
		delete(counts, name)
	}
	// Out-of-enum names survive merges; expose them too, in stable order.
	extra := make([]string, 0, len(counts))
	for name := range counts {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "tnsr_fleet_escapes_total{reason=%q} %d\n", obs.PromEscape(name), counts[name])
	}

	obs.PromHeader(w, "tnsr_fleet_push_errors_total", "counter", "Profile pushes that failed in the final round.")
	fmt.Fprintf(w, "tnsr_fleet_push_errors_total %d\n", rr.PushErrs)

	if sb := rr.SourceBreaker; sb != nil {
		state := 0
		switch sb.State {
		case "open":
			state = 1
		case "half-open":
			state = 2
		}
		obs.PromHeader(w, "tnsr_fleet_source_breaker_state", "gauge",
			"Profile-source circuit breaker state (0 closed, 1 open, 2 half-open).")
		fmt.Fprintf(w, "tnsr_fleet_source_breaker_state %d\n", state)
		obs.PromHeader(w, "tnsr_fleet_source_breaker_opens_total", "counter",
			"Times the profile-source breaker tripped open.")
		fmt.Fprintf(w, "tnsr_fleet_source_breaker_opens_total %d\n", sb.Opens)
		obs.PromHeader(w, "tnsr_fleet_source_fastfails_total", "counter",
			"Profile-source calls refused by an open breaker.")
		fmt.Fprintf(w, "tnsr_fleet_source_fastfails_total %d\n", sb.FastFails)
	}
}
