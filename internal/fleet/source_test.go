package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"tnsr/internal/pgo"
	"tnsr/internal/retry"
)

// failingSource is a profile source that always errors, counting calls.
type failingSource struct{ calls atomic.Int64 }

func (f *failingSource) Fetch(string) (*pgo.Profile, error) {
	f.calls.Add(1)
	return nil, errors.New("profile daemon unreachable")
}

func (f *failingSource) Push(*pgo.Profile) (*pgo.Profile, error) {
	f.calls.Add(1)
	return nil, errors.New("profile daemon unreachable")
}

// rateLimitedSource answers every call 429 — a live daemon under
// backpressure.
type rateLimitedSource struct{ calls atomic.Int64 }

func (f *rateLimitedSource) err() error {
	f.calls.Add(1)
	return fmt.Errorf("profsrv: push: %w",
		&retry.HTTPError{Status: http.StatusTooManyRequests, Body: "rate limit exceeded"})
}

func (f *rateLimitedSource) Fetch(string) (*pgo.Profile, error)      { return nil, f.err() }
func (f *rateLimitedSource) Push(*pgo.Profile) (*pgo.Profile, error) { return nil, f.err() }

// TestFleetSourceBreakerOpens pins the shared-breaker contract: a dead
// profile daemon costs the fleet its threshold of real attempts, after
// which every further push fast-fails — and none of it touches the served
// transactions.
func TestFleetSourceBreakerOpens(t *testing.T) {
	src := &failingSource{}
	fr, err := Run(Config{
		Machines:         8,
		Seed:             3,
		Source:           src,
		SourceBreakAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := fr.Final()
	if rr.MachineStates.Serving != 8 {
		t.Fatalf("serving %d of 8 under a dead profile source: %+v",
			rr.MachineStates.Serving, rr.Failures)
	}
	sb := rr.SourceBreaker
	if sb == nil {
		t.Fatal("round report carries no source breaker snapshot")
	}
	if sb.State != "open" {
		t.Errorf("breaker state %q, want open", sb.State)
	}
	if sb.Opens < 1 {
		t.Errorf("breaker opens = %d, want >= 1", sb.Opens)
	}
	// 8 pushes + 1 host fetch raced into the breaker; only the threshold's
	// worth (plus any admitted concurrently before the trip) reached the
	// daemon, the rest fast-failed.
	if got := src.calls.Load(); got > 8 {
		t.Errorf("dead source contacted %d times, want <= 8", got)
	}
	if sb.FastFails < 1 {
		t.Errorf("fast fails = %d, want >= 1", sb.FastFails)
	}
	// Every machine whose push was refused (by the source or the breaker)
	// counts a push error — the degrade is visible, never silent.
	if rr.PushErrs != 8 {
		t.Errorf("push errors = %d, want 8", rr.PushErrs)
	}

	var prom bytes.Buffer
	fr.WritePrometheus(&prom)
	for _, want := range []string{
		"tnsr_fleet_source_breaker_state 1",
		"tnsr_fleet_source_breaker_opens_total 1",
		"tnsr_fleet_source_fastfails_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}
}

// TestFleetSourceBreakerIgnoresBackpressure pins the 429 rule: a daemon
// shedding load with rate limits is ALIVE, and the breaker must not convert
// its backpressure into a self-inflicted outage.
func TestFleetSourceBreakerIgnoresBackpressure(t *testing.T) {
	src := &rateLimitedSource{}
	fr, err := Run(Config{
		Machines:         8,
		Seed:             3,
		Source:           src,
		SourceBreakAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := fr.Final()
	sb := rr.SourceBreaker
	if sb == nil {
		t.Fatal("round report carries no source breaker snapshot")
	}
	if sb.State != "closed" {
		t.Errorf("breaker state %q under pure 429s, want closed", sb.State)
	}
	if sb.Opens != 0 || sb.FastFails != 0 {
		t.Errorf("breaker opens=%d fastFails=%d under pure 429s, want 0/0",
			sb.Opens, sb.FastFails)
	}
	// Every call went through — nothing was fast-failed.
	if got := src.calls.Load(); got < 8 {
		t.Errorf("rate-limited source contacted %d times, want >= 8", got)
	}
}
