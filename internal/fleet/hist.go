package fleet

import "math/bits"

// Hist is a mergeable HDR-style latency histogram: log-linear buckets with
// histSubBuckets linear sub-buckets per power-of-two octave, giving a
// bounded relative error of at most 1/histSubBuckets (~3%) at any
// magnitude. Per-machine histograms are recorded independently and merged
// by bucket-wise addition at the fleet host, so aggregate percentiles need
// no raw-sample retention and no cross-machine coordination. Values are
// non-negative int64s (the fleet records nanoseconds).
type Hist struct {
	counts []int64
	total  int64
	sum    int64 // of recorded values, for Mean
	max    int64
}

const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32
)

// histIndex maps a value to its bucket. Values below histSubBuckets get an
// exact bucket each; above, the top histSubBits bits after the leading one
// select a linear sub-bucket within the value's octave, so consecutive
// buckets differ by at most ~3% of their value.
func histIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - histSubBits - 1
	return histSubBuckets*shift + int(v>>uint(shift))
}

// histValue returns the midpoint of bucket i's value range — the value a
// quantile query reports for ranks landing in the bucket.
func histValue(i int) int64 {
	if i < 2*histSubBuckets {
		return int64(i) // exact buckets, and the first octave is also exact
	}
	shift := i/histSubBuckets - 1
	lo := int64(histSubBuckets+i%histSubBuckets) << uint(shift)
	return lo + (int64(1)<<uint(shift))/2
}

// Record adds one observation. Negative values clamp to zero (virtual-time
// latencies are non-negative by construction; the clamp keeps a buggy
// caller from corrupting the bucket walk).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := histIndex(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge adds other's counts into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]int64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.total }

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the value at quantile q in [0,1]: the bucket midpoint at
// the ceil(q*count)-th smallest observation. Returns 0 when empty; q is
// clamped into [0,1].
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histValue(i)
			if v > h.max {
				return h.max // midpoint rounding must not exceed the observed max
			}
			return v
		}
	}
	return h.max
}
