package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"tnsr/internal/profsrv"
)

// NewInProcClient returns a profsrv client whose requests are served by
// srv directly — no socket, no listener — while still traversing the
// daemon's complete HTTP surface: routing, auth, body limits, and
// per-client rate limiting. Each machine's client stamps a distinct
// synthetic remote address derived from id, so the server sees the same
// client population a fleet of real hosts would present (and one abusive
// machine draining its bucket cannot 429 its neighbours). id < 0 is the
// host itself.
func NewInProcClient(srv *profsrv.Server, token string, id int) *profsrv.Client {
	return &profsrv.Client{
		BaseURL: "http://tnsfleet.inproc",
		Token:   token,
		HTTPClient: &http.Client{
			Transport: &inprocTransport{srv: srv, remoteAddr: machineAddr(id)},
		},
	}
}

// machineAddr synthesizes a per-machine remote address in a reserved
// range: 10.77.hi.lo, the host at 10.77.255.254.
func machineAddr(id int) string {
	if id < 0 {
		return "10.77.255.254:0"
	}
	return fmt.Sprintf("10.77.%d.%d:%d", (id>>8)&0xFF, id&0xFF, 40000+id%20000)
}

// inprocTransport adapts profsrv.Server.ServeHTTP into an
// http.RoundTripper.
type inprocTransport struct {
	srv        *profsrv.Server
	remoteAddr string
}

func (t *inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Server handlers are free to mutate their request; hand them a
	// shallow clone with the synthetic origin stamped on.
	r := req.Clone(req.Context())
	r.RemoteAddr = t.remoteAddr
	if r.Body == nil {
		r.Body = http.NoBody
	}

	rw := &inprocResponse{header: http.Header{}, code: http.StatusOK}
	t.srv.ServeHTTP(rw, r)
	return &http.Response{
		Status:        http.StatusText(rw.code),
		StatusCode:    rw.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rw.header,
		Body:          io.NopCloser(bytes.NewReader(rw.body.Bytes())),
		ContentLength: int64(rw.body.Len()),
		Request:       req,
	}, nil
}

// inprocResponse is the minimal http.ResponseWriter the server writes into.
type inprocResponse struct {
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (w *inprocResponse) Header() http.Header { return w.header }

func (w *inprocResponse) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
}

func (w *inprocResponse) Write(b []byte) (int, error) {
	w.wrote = true
	return w.body.Write(b)
}
