package fleet

import (
	"bytes"
	"strings"
	"testing"

	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/profsrv"
)

// TestFleetSmall runs a small standard fleet end to end: everything
// serves, nothing is interpreted, the report validates and exports.
func TestFleetSmall(t *testing.T) {
	fr, err := Run(Config{Machines: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	rr := fr.Final()
	if rr.MachineStates.Serving != 8 {
		t.Fatalf("serving %d of 8: %+v", rr.MachineStates.Serving, rr.Failures)
	}
	if rr.Txns != 8*DefaultTxnsPerMachine {
		t.Fatalf("txns %d", rr.Txns)
	}
	if rr.ThroughputTPS <= 0 {
		t.Fatalf("throughput %g", rr.ThroughputTPS)
	}
	if rr.Latency.Count != rr.Txns || rr.Latency.P99Ms <= 0 {
		t.Fatalf("latency %+v", rr.Latency)
	}
	// The fleet's whole point: the standard image runs translated. ET1 at
	// the default level has no interpreter residency at all.
	if f := rr.Obs.Modes.InterpFraction; f > 0.005 {
		t.Fatalf("interp fraction %g on a pristine fleet", f)
	}
	for _, e := range rr.Obs.Escapes {
		if e.Reason == obs.EscapeUnknown.String() && e.Count > 0 {
			t.Fatalf("unknown escapes: %d", e.Count)
		}
	}

	var prom, text bytes.Buffer
	fr.WritePrometheus(&prom)
	fr.WriteText(&text)
	for _, want := range []string{
		`tnsr_fleet_machines{state="serving"} 8`,
		`tnsr_fleet_escapes_total{reason="unknown"} 0`,
		"tnsr_fleet_throughput_tps",
		`tnsr_fleet_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}
	if !strings.Contains(text.String(), "serving 8") {
		t.Errorf("text output:\n%s", text.String())
	}
	if _, err := fr.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetDeterministic pins seed-reproducibility: two runs with one
// seed must serialize identically.
func TestFleetDeterministic(t *testing.T) {
	run := func() []byte {
		fr, err := Run(Config{Machines: 12, Seed: 7, Traffic: Traffic{Burstiness: 3}})
		if err != nil {
			t.Fatal(err)
		}
		data, err := fr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different reports:\n%s\n----\n%s", a, b)
	}
}

// TestFleetChaosIsolation is the degradation contract under concurrency:
// chaos machines may degrade or fail, but only them — every standard
// machine keeps serving translated, and the fleet aggregate never reports
// fleet-wide degradation or unknown escapes.
func TestFleetChaosIsolation(t *testing.T) {
	const machines, chaosN = 24, 8
	fr, err := Run(Config{
		Machines: machines, ChaosMachines: chaosN,
		Seed: 3, ChaosSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	rr := fr.Final()
	ms := rr.MachineStates
	// Standard machines must all serve: damage cannot spread past the
	// chaos population.
	if ms.Degraded+ms.Failed > chaosN {
		t.Fatalf("%d machines degraded/failed with only %d under chaos: %+v",
			ms.Degraded+ms.Failed, chaosN, rr.Failures)
	}
	if ms.Serving < machines-chaosN {
		t.Fatalf("only %d serving of %d standard machines", ms.Serving, machines-chaosN)
	}
	for _, f := range rr.Failures {
		if f.Machine >= chaosN {
			t.Fatalf("standard machine %d failed: %s", f.Machine, f.Reason)
		}
	}
	// Chaos must actually have bitten something this round — otherwise the
	// isolation assertions above were vacuous.
	if ms.Degraded+ms.Failed == 0 {
		t.Fatalf("no chaos machine degraded; seed exercised nothing")
	}
	// The merged report carries the victims' degradation without declaring
	// the fleet unhealthy: throughput and latency stay populated.
	if rr.Txns == 0 || rr.ThroughputTPS <= 0 {
		t.Fatalf("fleet stopped serving under chaos: %+v", rr)
	}
	for _, e := range rr.Obs.Escapes {
		if e.Reason == obs.EscapeUnknown.String() && e.Count > 0 {
			t.Fatalf("unknown escapes under chaos: %d", e.Count)
		}
	}
}

// TestFleetPGORounds closes the loop through an in-process tnsprofd: the
// fleet pushes captures, the host retranslates under the fetched
// aggregate, and round 2 serves from the shared gen-2 image.
func TestFleetPGORounds(t *testing.T) {
	store, err := profsrv.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := profsrv.New(profsrv.Config{
		Store: store, Token: "fleet-secret",
		RatePerSec: 1000, RateBurst: 100,
	})
	fr, err := Run(Config{
		Machines: 12, Rounds: 2, Seed: 9,
		InProc: srv, InProcToken: "fleet-secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fr.Rounds) != 2 {
		t.Fatalf("%d rounds", len(fr.Rounds))
	}
	for _, rr := range fr.Rounds {
		if rr.PushErrs != 0 {
			t.Fatalf("round %d: %d push errors", rr.Round, rr.PushErrs)
		}
		if rr.MachineStates.Serving != 12 {
			t.Fatalf("round %d: %d serving: %+v", rr.Round, rr.MachineStates.Serving, rr.Failures)
		}
	}
	// The service holds the fleet's merged aggregate: one run per serving
	// machine per round.
	fps, err := store.List()
	if err != nil || len(fps) != 1 {
		t.Fatalf("store fingerprints %v, err %v", fps, err)
	}
	agg, err := store.Load(fps[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * 12); agg.Runs != want {
		t.Fatalf("aggregate runs %d, want %d", agg.Runs, want)
	}
}

// TestFleetThousandMachines is the scale acceptance run: a 1000-machine
// fleet, each machine a live goroutine with private interpreter/simulator
// state over the one shared image, completes and aggregates coherently.
// (Under -race this is also the strongest shared-image race probe in the
// repo.)
func TestFleetThousandMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-machine fleet skipped in -short mode")
	}
	const machines = 1000
	fr, err := Run(Config{Machines: machines, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	rr := fr.Final()
	if rr.MachineStates.Serving != machines {
		t.Fatalf("serving %d of %d: %+v", rr.MachineStates.Serving, machines, rr.Failures)
	}
	if rr.Txns != machines*DefaultTxnsPerMachine {
		t.Fatalf("txns %d", rr.Txns)
	}
	if f := rr.Obs.Modes.InterpFraction; f > 0.005 {
		t.Fatalf("interp fraction %g", f)
	}
	if rr.Latency.Count != rr.Txns {
		t.Fatalf("latency count %d for %d txns", rr.Latency.Count, rr.Txns)
	}
}

// TestReportMergeHonorsFailures pins aggregateRound's bookkeeping: failed
// machines contribute nothing to txns, latency or telemetry.
func TestReportMergeHonorsFailures(t *testing.T) {
	cfg := &Config{}
	cfg.fill()
	okRep := func() *obs.Report {
		return &obs.Report{Schema: obs.Schema, Workload: "et1", Level: "Default",
			Modes: obs.ModeResidency{RISCInstrs: 100, RISCCycles: 100, TotalCycles: 100}}
	}
	lat := &Hist{}
	lat.Record(5e6)
	results := []*machineResult{
		{id: 0, state: Serving, report: okRep(), txns: 2, elapsed: 1, lat: lat, capture: &pgo.Profile{}},
		{id: 1, state: Failed, stateReason: "boom"},
		{id: 2, state: Degraded, report: okRep(), txns: 2, elapsed: 2, lat: lat},
	}
	rr, captures := aggregateRound(cfg, 1, results)
	if rr.MachineStates.Serving != 1 || rr.MachineStates.Failed != 1 || rr.MachineStates.Degraded != 1 {
		t.Fatalf("states %+v", rr.MachineStates)
	}
	if rr.Txns != 4 {
		t.Fatalf("txns %d", rr.Txns)
	}
	if len(captures) != 1 { // degraded machines don't advise the fleet
		t.Fatalf("%d captures", len(captures))
	}
	if rr.Obs.Modes.RISCInstrs != 200 {
		t.Fatalf("merged instrs %d", rr.Obs.Modes.RISCInstrs)
	}
	if len(rr.Failures) != 1 || rr.Failures[0].Machine != 1 {
		t.Fatalf("failures %+v", rr.Failures)
	}
}
