package fleet

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"tnsr/internal/profsrv"
	"tnsr/internal/tcache"
	"tnsr/internal/xlate"
)

// newXlateServer mounts a real tnsxlated on a socket over a fresh store.
func newXlateServer(t testing.TB) (*xlate.Server, *httptest.Server) {
	t.Helper()
	c, err := tcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := xlate.New(xlate.Config{Cache: c, Workers: 2})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func newProfServer(t testing.TB) *profsrv.Server {
	t.Helper()
	store, err := profsrv.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return profsrv.New(profsrv.Config{Store: store})
}

// TestFleetXlateRemoteIdentical: a fleet whose host translates through a
// tnsxlated service produces a report byte-identical to the same fleet
// translating locally — including the round-2 profiled retranslation
// through the PGO loop, so the remote path is exercised with a profile
// attached, not just cold.
func TestFleetXlateRemoteIdentical(t *testing.T) {
	run := func(cl *xlate.Client) []byte {
		fr, err := Run(Config{
			Machines: 6, Seed: 9, Rounds: 2,
			InProc: newProfServer(t),
			Xlate:  cl,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fr.Validate(); err != nil {
			t.Fatal(err)
		}
		data, err := fr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	local := run(nil)

	s, srv := newXlateServer(t)
	cl := xlate.NewClient(srv.URL, "")
	cl.PollInterval = 5 * time.Millisecond
	remote := run(cl)

	if !bytes.Equal(local, remote) {
		t.Fatalf("remote-translated fleet report differs from local:\n%s\n----\n%s", local, remote)
	}
	// The translations really went through the service's queue.
	if st := s.Queue().Stats(); st.Executed == 0 {
		t.Errorf("service queue executed no fragments: %+v", st)
	}
}

// TestFleetXlateDegradesToLocal: an unreachable translation service costs
// the fleet nothing but the failed connection — the host translates
// locally and the report is identical to a run with no service at all.
func TestFleetXlateDegradesToLocal(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	run := func(cl *xlate.Client) []byte {
		fr, err := Run(Config{Machines: 4, Seed: 13, Xlate: cl})
		if err != nil {
			t.Fatal(err)
		}
		data, err := fr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	local := run(nil)
	degraded := run(xlate.NewClient(deadURL, ""))
	if !bytes.Equal(local, degraded) {
		t.Fatalf("degraded fleet report differs from local:\n%s\n----\n%s", local, degraded)
	}
}
