package fleet

import (
	"math"
	"math/rand"
)

// Traffic describes the open-loop arrival process each machine's terminal
// population offers: transactions arrive whether or not the previous one has
// completed, so a slow machine accumulates queueing delay instead of
// throttling its own load (the property that makes p99 latency meaningful).
type Traffic struct {
	// RateTPS is the mean arrival rate in transactions per second of
	// simulated time. <=0 selects DefaultRateTPS.
	RateTPS float64
	// ThinkSeconds is a fixed per-transaction think time added to every
	// inter-arrival gap (terminal operator delay). Negative reads as 0.
	ThinkSeconds float64
	// Burstiness shapes the inter-arrival distribution. 0 (or 1) is a plain
	// Poisson process (exponential gaps). Values >1 produce burstier-than-
	// Poisson traffic by mixing a fraction of near-zero gaps with
	// compensating long gaps, preserving the mean rate; values in (0,1)
	// smooth toward constant spacing. Implemented as a two-phase hyper-/
	// hypo-exponential mix so the generator stays seed-deterministic.
	Burstiness float64
}

// DefaultRateTPS is the arrival rate used when Traffic.RateTPS is unset:
// 15 TPS per machine, the ET1 rating the paper quotes for the original
// CISC TNS machines the fleet emulates.
const DefaultRateTPS = 15.0

// gaps returns n inter-arrival gaps in seconds, deterministic in rng.
func (t Traffic) gaps(rng *rand.Rand, n int) []float64 {
	rate := t.RateTPS
	if rate <= 0 {
		rate = DefaultRateTPS
	}
	think := t.ThinkSeconds
	if think < 0 {
		think = 0
	}
	b := t.Burstiness
	if b <= 0 {
		b = 1
	}
	mean := 1 / rate
	out := make([]float64, n)
	for i := range out {
		var gap float64
		switch {
		case b == 1:
			gap = rng.ExpFloat64() * mean
		case b > 1:
			// Hyperexponential: with probability 1/b draw a long gap of mean
			// b*mean, otherwise a short gap of mean ~0. Mean is preserved;
			// variance grows with b.
			if rng.Float64() < 1/b {
				gap = rng.ExpFloat64() * b * mean
			} else {
				gap = rng.ExpFloat64() * mean / (4 * b)
			}
		default: // 0 < b < 1: blend exponential toward constant spacing
			gap = b*rng.ExpFloat64()*mean + (1-b)*mean
		}
		if math.IsInf(gap, 0) || math.IsNaN(gap) {
			gap = mean
		}
		out[i] = gap + think
	}
	return out
}
