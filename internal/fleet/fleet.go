package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"tnsr/internal/chaos"
	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/machine"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/profsrv"
	"tnsr/internal/retry"
	"tnsr/internal/risc"
	"tnsr/internal/tcache"
	"tnsr/internal/workloads"
	"tnsr/internal/xlate"
	"tnsr/internal/xrun"
)

// clockMHz prices simulated seconds: the Cyclone/R clock the whole repo's
// cost model is calibrated to.
const clockMHz = machine.CycloneRClockMHz

// Default knobs; Config zero values fall back to these.
const (
	DefaultTxnsPerMachine = 2
	DefaultBudget         = 200_000_000
	DefaultWorkload       = "et1"
)

// Config parameterizes one fleet run.
type Config struct {
	// Machines is the fleet size: one goroutine-backed simulated machine
	// each (<= 0 means 1).
	Machines int

	// TxnsPerMachine is the ET1 transaction count each machine executes
	// per round (<= 0 means DefaultTxnsPerMachine). It is compiled into
	// the workload, so it participates in the codefile fingerprint.
	TxnsPerMachine int

	// Rounds is how many times the whole fleet runs (<= 0 means 1). With
	// a profile source attached, round N+1 executes under a shared image
	// retranslated from the aggregate of round N's pushed captures — the
	// cross-machine PGO loop at fleet scale.
	Rounds int

	// Level is the shared image's acceleration level (LevelNone, the zero
	// value, reads as LevelDefault: a fleet exists to run translated).
	Level codefile.AccelLevel

	// Workers is the translation worker count (0 means the translator's
	// default).
	Workers int

	// Seed makes the run reproducible: machine i draws its arrival
	// schedule from Seed and i alone.
	Seed int64

	// Budget caps each machine's executed instructions per round
	// (<= 0 means DefaultBudget).
	Budget int64

	// RunSlots bounds how many machines hold resident simulator images at
	// once (<= 0 picks ~4x GOMAXPROCS, clamped to [8, 256]). All Machines
	// goroutines exist concurrently regardless; the gate only bounds peak
	// memory, not concurrency semantics.
	RunSlots int

	// Traffic shapes each machine's open-loop arrival process.
	Traffic Traffic

	// ChaosMachines is how many machines (the lowest IDs) run chaos-
	// mutated private images each round instead of the shared image.
	// Their degradation must stay their own: that is the isolation
	// property the fleet report's machine-state counts prove.
	ChaosMachines int

	// ChaosSeed seeds mutant selection (independent of Seed so traffic
	// and chaos can be varied separately).
	ChaosSeed int64

	// Workload names the program every machine runs (empty means
	// DefaultWorkload; ET1 is the fleet's reason to exist, but any
	// workload the repo builds is accepted).
	Workload string

	// Source, when non-nil, closes the PGO loop through a profile
	// service: serving machines push their captures after each round and
	// the host retranslates the next round's shared image under the
	// fetched aggregate. (*profsrv.Client reaches a remote tnsprofd.)
	Source xrun.ProfileSource

	// InProc mounts a profile server in-process instead: each machine
	// gets its own client whose synthetic remote address identifies it,
	// so the daemon's per-client rate limiting sees the same client
	// population a real fleet would present. Overrides Source.
	InProc      *profsrv.Server
	InProcToken string

	// Cache, when non-nil, serves the host's translations through the
	// persistent retranslation cache.
	Cache *tcache.Cache

	// Xlate, when non-nil, sends the host's translations to a tnsxlated
	// service first (the shared image and every per-round profiled
	// retranslation). Any remote failure degrades to a local translation
	// — the service's determinism contract makes the two byte-identical,
	// so degrading changes availability, never the image.
	Xlate *xlate.Client

	// SourceBreakAfter is the consecutive-failure count that opens the
	// shared profile-source circuit breaker (<= 0 means
	// retry.DefaultBreakAfter); SourceBreakCooldown is how long it stays
	// open before probing (<= 0 means retry.DefaultCooldown). The breaker
	// is shared by every machine's pushes and the host's fetches — one
	// dependency, one breaker. 429 backpressure never counts as failure.
	SourceBreakAfter    int
	SourceBreakCooldown time.Duration

	// Config is the simulator timing model (zero value means the
	// Cyclone/R defaults).
	Config risc.Config

	// Progress, when non-nil, receives one-line status messages.
	Progress func(format string, args ...any)

	// sourceBr guards every profile-source call; built by fill.
	sourceBr *retry.Breaker
}

func (c *Config) fill() {
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.TxnsPerMachine <= 0 {
		c.TxnsPerMachine = DefaultTxnsPerMachine
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.RunSlots <= 0 {
		c.RunSlots = 4 * runtime.GOMAXPROCS(0)
		if c.RunSlots < 8 {
			c.RunSlots = 8
		}
		if c.RunSlots > 256 {
			c.RunSlots = 256
		}
	}
	if c.Workload == "" {
		c.Workload = DefaultWorkload
	}
	if c.Level == codefile.LevelNone {
		c.Level = codefile.LevelDefault
	}
	if c.ChaosMachines > c.Machines {
		c.ChaosMachines = c.Machines
	}
	if (c.Config == risc.Config{}) {
		c.Config = risc.DefaultConfig()
	}
	if c.sourceBr == nil {
		c.sourceBr = retry.NewBreaker(c.SourceBreakAfter, c.SourceBreakCooldown)
	}
}

func (c *Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// sourceFor returns machine id's profile source: a private in-process
// client when a server is mounted, the shared source otherwise. id < 0 is
// the host itself.
func (c *Config) sourceFor(id int) xrun.ProfileSource {
	var src xrun.ProfileSource
	if c.InProc != nil {
		src = NewInProcClient(c.InProc, c.InProcToken, id)
	} else {
		src = c.Source
	}
	if src == nil {
		return nil
	}
	return &guardedSource{src: src, br: c.sourceBr}
}

// mixSeed derives machine id's per-round seed from the run seed with a
// splitmix-style multiply, so neighbouring IDs draw unrelated streams.
func mixSeed(seed int64, id, round int) int64 {
	x := uint64(seed) ^ uint64(id)*0x9E3779B97F4A7C15 ^ uint64(round)<<32
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// Run executes the whole fleet and returns its report.
func Run(cfg Config) (*FleetReport, error) {
	cfg.fill()

	fr := &FleetReport{
		Schema:         FleetSchema,
		Workload:       cfg.Workload,
		Machines:       cfg.Machines,
		TxnsPerMachine: cfg.TxnsPerMachine,
		ChaosMachines:  cfg.ChaosMachines,
		Level:          cfg.Level.String(),
		Seed:           cfg.Seed,
	}

	// One chaos reference serves every round: the mutation operators work
	// on serialized images, so building it once keeps per-round setup at
	// "mutate bytes", not "re-accelerate the world".
	var ref *chaos.Reference
	if cfg.ChaosMachines > 0 {
		w, err := workloads.Build(cfg.Workload, cfg.TxnsPerMachine)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		ref, err = chaos.NewReferenceFromFiles(cfg.Workload, w.User, w.Lib,
			w.LibSummaries, cfg.Budget)
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos reference: %w", err)
		}
	}

	// The cross-round profile: round 1 inherits whatever the service
	// already holds; later rounds run under the aggregate of the fleet's
	// own pushes.
	var prof *pgo.Profile
	hostSource := cfg.sourceFor(-1)

	var localCaptures []*pgo.Profile
	for round := 1; round <= cfg.Rounds; round++ {
		user, lib, err := buildShared(&cfg, prof)
		if err != nil {
			return nil, err
		}
		if hostSource != nil && round == 1 {
			fp := fmt.Sprintf("%016x", user.Fingerprint())
			if agg, err := hostSource.Fetch(fp); err == nil && agg != nil {
				// Rebuild under the inherited aggregate before anyone runs.
				if user, lib, err = buildShared(&cfg, agg); err != nil {
					return nil, err
				}
			}
		}
		oracle, err := interpReference(user, lib, cfg.Budget)
		if err != nil {
			return nil, err
		}
		cfg.progress("round %d/%d: %d machines (%d chaos), level %s",
			round, cfg.Rounds, cfg.Machines, cfg.ChaosMachines, cfg.Level)

		results := runRound(&cfg, round, user, lib, ref, oracle)
		rr, captures := aggregateRound(&cfg, round, results)
		fr.Rounds = append(fr.Rounds, rr)
		localCaptures = captures
		cfg.progress("round %d/%d: %.1f txn/s, p99 %.2f ms, %.2f%% interpreted, %d/%d serving",
			round, cfg.Rounds, rr.ThroughputTPS, rr.Latency.P99Ms,
			100*rr.Obs.Modes.InterpFraction, rr.MachineStates.Serving, cfg.Machines)

		if round == cfg.Rounds {
			break
		}
		prof = nextRoundProfile(&cfg, hostSource, user, localCaptures)
	}
	return fr, nil
}

// buildShared compiles and accelerates the fleet's shared image, under
// prof when non-nil. The returned files are shared READ-ONLY by every
// standard machine; the immutability contract (sealed PMaps, copy-on-load
// runtime images) is what makes that safe, and the fleet race tests pin it.
func buildShared(cfg *Config, prof *pgo.Profile) (*codefile.File, *codefile.File, error) {
	w, err := workloads.Build(cfg.Workload, cfg.TxnsPerMachine)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %w", err)
	}
	accelerate := func(f *codefile.File, opts core.Options) error {
		if cfg.Xlate != nil {
			if err := cfg.Xlate.Accelerate(f, opts); err == nil {
				return nil
			}
			// Remote failure: degrade to a local translation of the same
			// key — byte-identical by the determinism contract.
		}
		if cfg.Cache != nil {
			_, err := cfg.Cache.Accelerate(f, opts)
			return err
		}
		return core.Accelerate(f, opts)
	}
	if err := accelerate(w.User, core.Options{
		Level: cfg.Level, Workers: cfg.Workers,
		LibSummaries: w.LibSummaries, Profile: prof,
	}); err != nil {
		return nil, nil, fmt.Errorf("fleet: accelerate user: %w", err)
	}
	if w.Lib != nil {
		if err := accelerate(w.Lib, core.Options{
			Level: cfg.Level, Workers: cfg.Workers,
			CodeBase: millicode.LibCodeBase, Space: 1, Profile: prof,
		}); err != nil {
			return nil, nil, fmt.Errorf("fleet: accelerate lib: %w", err)
		}
	}
	return w.User, w.Lib, nil
}

// runRound launches every machine concurrently and collects their results
// in ID order. Chaos machines parse private mutated images; a rejected
// image falls back to the pristine CISC view of the SHARED files — the
// machine serves interpreted, alone in its degradation.
func runRound(cfg *Config, round int, user, lib *codefile.File,
	ref *chaos.Reference, oracle reference) []*machineResult {

	slots := make(chan struct{}, cfg.RunSlots)
	results := make([]*machineResult, cfg.Machines)
	var wg sync.WaitGroup
	for id := 0; id < cfg.Machines; id++ {
		spec := &machineSpec{
			id:       id,
			workload: cfg.Workload,
			user:     user,
			lib:      lib,
			ref:      oracle,
			cfg:      cfg.Config,
			budget:   cfg.Budget,
			txns:     cfg.TxnsPerMachine,
			traffic:  cfg.Traffic,
			rng:      rand.New(rand.NewSource(mixSeed(cfg.Seed, id, round))),
			source:   cfg.sourceFor(id),
		}
		if id < cfg.ChaosMachines && ref != nil {
			assignMutant(spec, ref, cfg.ChaosSeed, round, user, lib)
		}
		wg.Add(1)
		go func(spec *machineSpec) {
			defer wg.Done()
			results[spec.id] = runMachine(spec, slots)
		}(spec)
	}
	wg.Wait()
	return results
}

// assignMutant points a chaos machine's spec at its private mutated image.
// Every failure mode downgrades toward the pristine shared image — the
// chaos contract is that damage is contained, not that damage is possible.
func assignMutant(spec *machineSpec, ref *chaos.Reference, seed int64, round int,
	sharedUser, sharedLib *codefile.File) {

	rng := rand.New(rand.NewSource(mixSeed(seed, spec.id, round)))
	op := chaos.Op(rng.Intn(int(chaos.NumOps)))
	mu, err := ref.Mutate(rng, op)
	if err != nil {
		// Mutation machinery failed; run pristine. The machine still
		// counts as a chaos machine, it just drew a blank round.
		return
	}
	userRaw, libRaw := mu.User, mu.Lib
	if userRaw == nil {
		userRaw = ref.UserRaw
	}
	if libRaw == nil {
		libRaw = ref.LibRaw
	}
	fallback := func(detail string) {
		spec.user = accelFree(sharedUser)
		spec.lib = accelFree(sharedLib)
		spec.chaosDegraded = fmt.Sprintf("chaos %s: image rejected at load: %s", op, detail)
	}
	u, err := parseImage(userRaw)
	if err != nil {
		fallback(err.Error())
		return
	}
	var l *codefile.File
	if libRaw != nil {
		if l, err = parseImage(libRaw); err != nil {
			fallback(err.Error())
			return
		}
	}
	spec.user, spec.lib = u, l
}

// aggregateRound folds the machines' results (in ID order, so the merge is
// deterministic) into one RoundReport via obs.Report.Merge, and returns
// the serving machines' captures for the host-side profile fold.
func aggregateRound(cfg *Config, round int, results []*machineResult) (RoundReport, []*pgo.Profile) {
	rr := RoundReport{Round: round}
	lat := &Hist{}
	var merged *obs.Report
	var captures []*pgo.Profile
	for _, res := range results {
		if res == nil { // unreachable: every goroutine writes its slot
			rr.MachineStates.Failed++
			continue
		}
		switch res.state {
		case Serving:
			rr.MachineStates.Serving++
		case Degraded:
			rr.MachineStates.Degraded++
		case Failed:
			rr.MachineStates.Failed++
			rr.Failures = append(rr.Failures, MachineFailure{
				Machine: res.id, Reason: res.stateReason})
			continue
		}
		rr.Txns += res.txns
		if res.elapsed > 0 {
			rr.ThroughputTPS += float64(res.txns) / res.elapsed
		}
		lat.Merge(res.lat)
		if res.pushErr != nil {
			rr.PushErrs++
		}
		if res.capture != nil && res.state == Serving {
			captures = append(captures, res.capture)
		}
		if res.report != nil {
			if merged == nil {
				merged = res.report
			} else if err := merged.Merge(res.report); err != nil {
				// A malformed per-machine report cannot be merged; treat
				// its producer as failed rather than poisoning the fleet.
				rr.MachineStates.Failed++
				rr.Failures = append(rr.Failures, MachineFailure{
					Machine: res.id, Reason: "report merge: " + err.Error()})
			}
		}
	}
	if merged == nil {
		merged = &obs.Report{Schema: obs.Schema, Workload: cfg.Workload, Level: "None"}
	}
	rr.Obs = merged
	rr.Latency = latencyStats(lat)
	if cfg.Cache != nil {
		st := cfg.Cache.Stats()
		rr.CacheHits, rr.CacheMisses = st.Hits, st.Misses
	}
	if cfg.InProc != nil || cfg.Source != nil {
		bc := cfg.sourceBr.Counts()
		rr.SourceBreaker = &BreakerSnapshot{
			State:     bc.State.String(),
			Opens:     bc.Opens,
			FastFails: bc.FastFails,
			Probes:    bc.Probes,
		}
	}
	return rr, captures
}

// nextRoundProfile decides what profile the next round's shared image is
// translated under: the service's aggregate when the loop runs through
// one, the local fold of this round's captures otherwise.
func nextRoundProfile(cfg *Config, src xrun.ProfileSource, user *codefile.File,
	captures []*pgo.Profile) *pgo.Profile {

	if src != nil {
		fp := fmt.Sprintf("%016x", user.Fingerprint())
		if agg, err := src.Fetch(fp); err == nil && agg != nil {
			return agg
		}
	}
	if len(captures) == 0 {
		return nil
	}
	merged, err := pgo.Merge(captures...)
	if err != nil {
		return nil
	}
	return merged
}
