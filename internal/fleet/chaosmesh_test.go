package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tnsr/internal/faultsim"
	"tnsr/internal/obs"
	"tnsr/internal/profsrv"
	"tnsr/internal/retry"
	"tnsr/internal/store"
	"tnsr/internal/tcache"
	"tnsr/internal/xlate"
)

// meshConfig is the fixed fleet shape every soak run (and the fault-free
// baseline) uses; only the fault seeds vary.
func meshConfig() Config {
	return Config{Machines: 4, Seed: 9, Rounds: 1}
}

// normalizeMesh strips the advisory resilience fields whose values depend
// on which faults fired — push failures, breaker state — leaving exactly
// the served work: transactions, latency, mode residency, escapes. That
// remainder must be byte-identical to the fault-free baseline, because
// every code path under test either produced the deterministic image or
// took a typed degrade to a local translation of the same image.
func normalizeMesh(t *testing.T, fr *FleetReport) []byte {
	t.Helper()
	for i := range fr.Rounds {
		fr.Rounds[i].PushErrs = 0
		fr.Rounds[i].SourceBreaker = nil
	}
	data, err := fr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosMeshSoak wires the whole service mesh — fleet host, tnsxlated
// over a fault-injected store behind a fault-injected transport, tnsprofd
// behind a fault-injected transport — and runs 12 seeded storms through
// it. The acceptance line: every machine either serves bytes identical to
// the fault-free baseline or takes a typed degrade; no machine fails, no
// escape is unattributed, nothing panics. Wrong output anywhere is a test
// failure — availability may degrade under chaos, correctness never does.
func TestChaosMeshSoak(t *testing.T) {
	const meshSeeds = 12

	baseline, err := Run(meshConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := string(normalizeMesh(t, baseline))

	for seed := int64(0); seed < meshSeeds; seed++ {
		// tnsxlated: translation service whose store AND transport misbehave.
		backing, err := store.OpenDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		xsrv := xlate.New(xlate.Config{
			Cache: tcache.New(faultsim.WrapStore(backing, faultsim.StoreOpts{
				Seed: seed, PIOErr: 0.10, PNoSpace: 0.10, PTorn: 0.10,
			})),
			Workers: 2,
		})
		xhs := httptest.NewServer(xsrv)

		xc := xlate.NewClient(xhs.URL, "")
		xc.HTTPClient = &http.Client{
			Transport: faultsim.WrapTransport(http.DefaultTransport, faultsim.TransportOpts{
				Seed: seed + 1000, PReset: 0.10, P5xx: 0.10, PTruncate: 0.05, PCorrupt: 0.05,
			}),
			Timeout: 5 * time.Second,
		}
		xc.Retry = retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: seed}
		xc.PollInterval = time.Millisecond
		xc.PollMax = 10 * time.Millisecond
		xc.Deadline = 5 * time.Second

		// tnsprofd: profile service reached through its own bad network.
		pstore, err := profsrv.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		phs := httptest.NewServer(profsrv.New(profsrv.Config{Store: pstore}))

		pc := profsrv.NewClient(phs.URL, "")
		pc.HTTPClient = &http.Client{
			Transport: faultsim.WrapTransport(http.DefaultTransport, faultsim.TransportOpts{
				Seed: seed + 2000, PReset: 0.15, P5xx: 0.10, PDuplicate: 0.10,
			}),
			Timeout: 5 * time.Second,
		}
		pc.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: seed}

		cfg := meshConfig()
		cfg.Xlate = xc
		cfg.Source = pc
		fr, err := Run(cfg)
		if err != nil {
			t.Fatalf("mesh seed %d: fleet run failed: %v", seed, err)
		}
		rr := fr.Final()
		ms := rr.MachineStates
		if ms.Failed != 0 {
			t.Fatalf("mesh seed %d: %d machines failed under chaos: %+v", seed, ms.Failed, rr.Failures)
		}
		if ms.Serving+ms.Degraded != cfg.Machines {
			t.Fatalf("mesh seed %d: states %d+%d != %d machines", seed, ms.Serving, ms.Degraded, cfg.Machines)
		}
		for _, e := range rr.Obs.Escapes {
			if e.Reason == obs.EscapeUnknown.String() && e.Count > 0 {
				t.Fatalf("mesh seed %d: %d unattributed escapes", seed, e.Count)
			}
		}
		if got := string(normalizeMesh(t, fr)); got != want {
			t.Fatalf("mesh seed %d: served work differs from fault-free baseline\ngot:  %.400s\nwant: %.400s",
				seed, got, want)
		}

		xhs.Close()
		phs.Close()
		xsrv.Close()
	}
}

// TestChaosMeshReportJSON pins that the normalized comparison above is not
// vacuous: the baseline report round-trips through JSON with its rounds,
// states and escape lines present.
func TestChaosMeshReportJSON(t *testing.T) {
	fr, err := Run(meshConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := normalizeMesh(t, fr)
	var back FleetReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rounds) != 1 || back.Machines != 4 {
		t.Fatalf("normalized report lost its shape: %+v", back)
	}
}
