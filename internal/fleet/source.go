package fleet

import (
	"errors"
	"fmt"
	"net/http"

	"tnsr/internal/pgo"
	"tnsr/internal/retry"
	"tnsr/internal/xrun"
)

// guardedSource wraps a profile source behind the fleet's shared circuit
// breaker. Every machine's pushes and the host's aggregate fetches count
// against ONE breaker — the dependency is one daemon, so a dead tnsprofd
// costs the fleet a handful of timeouts before the whole round fast-fails
// its profile traffic, instead of every machine independently rediscovering
// the outage. Profile traffic is advisory throughout: a fast-failed push or
// fetch degrades the PGO loop for a round, never the served transactions.
type guardedSource struct {
	src xrun.ProfileSource
	br  *retry.Breaker
}

func (g *guardedSource) Fetch(fingerprint string) (*pgo.Profile, error) {
	if !g.br.Allow() {
		return nil, fmt.Errorf("fleet: profile fetch: %w", retry.ErrOpen)
	}
	p, err := g.src.Fetch(fingerprint)
	g.br.Report(breakerVerdict(err))
	return p, err
}

func (g *guardedSource) Push(p *pgo.Profile) (*pgo.Profile, error) {
	if !g.br.Allow() {
		return nil, fmt.Errorf("fleet: profile push: %w", retry.ErrOpen)
	}
	agg, err := g.src.Push(p)
	g.br.Report(breakerVerdict(err))
	return agg, err
}

// breakerVerdict decides what one source call's outcome tells the breaker.
// A 429 is backpressure from a live, responding daemon — the per-client
// rate limiter doing its job — and MUST NOT count as a failure: tripping on
// it would convert a rate limit into a self-inflicted outage where the
// fleet stops talking to a healthy server precisely because the server
// asked it to slow down.
func breakerVerdict(err error) error {
	if err == nil {
		return nil
	}
	var he *retry.HTTPError
	if errors.As(err, &he) && he.Status == http.StatusTooManyRequests {
		return nil
	}
	return err
}
