package ob0

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tnsr/internal/backend"
)

// reencode rebuilds the machine word for a decoded instruction through the
// public encoders. Decode is strict (unused bits must be zero), so for
// every word Decode accepts this must be the identity — the encoding has
// exactly one spelling per instruction.
func reencode(in Instr) uint32 {
	switch {
	case in.Op.IsRType():
		return EncR(in.Op, in.A, in.B, in.C)
	case in.Op.IsIType():
		return EncI(in.Op, in.A, in.B, in.Imm)
	case in.Op.IsLoad() || in.Op.IsStore():
		return EncM(in.Op, in.A, in.B, in.Imm)
	case in.Op.IsBranch():
		return EncBr(in.Op, in.Imm)
	case in.Op == JA || in.Op == JLA:
		return EncJ(in.Op, in.Target)
	case in.Op == JR:
		return EncJR(in.B)
	case in.Op == JLR:
		return EncJLR(in.A, in.B)
	case in.Op == BRK:
		return EncBrk(in.Target)
	case in.Op == SVC:
		return EncSvc(in.Target)
	}
	panic(fmt.Sprintf("reencode: unhandled op %s", in.Op))
}

// ob0DecodeSeeds are the corpus seeds for FuzzOb0Decode: one word per
// encoding family plus the near-miss shapes the strict decoder must
// reject (nonzero unused bits, out-of-range opcodes, truncation-like
// zero tails).
func ob0DecodeSeeds() map[string]uint32 {
	return map[string]uint32{
		"nop":          Nop,
		"r-type":       EncR(ADD, 3, 4, 5),
		"cmp":          EncR(CMP, 0, 7, 8),
		"mvh":          EncR(MVH, 9, 0, 0),
		"i-sign":       EncI(ADDI, 1, 2, -7),
		"i-zero":       EncI(IORI, 1, 2, 0xFFFF),
		"shift":        EncI(LSLI, 1, 2, 31),
		"mvhi":         EncI(MVHI, 6, 0, 0x0100),
		"load":         EncM(LDW, 3, 9, 0x40),
		"store":        EncM(STH, 3, 9, -4),
		"branch":       EncBr(BGT, -3),
		"jump":         EncJ(JA, 0x123456),
		"jr":           EncJR(backend.RegRA),
		"jlr":          EncJLR(backend.RegRA, backend.RegT0),
		"brk":          EncBrk(2),
		"svc":          EncSvc(5),
		"zero":         0,
		"bad-op":       uint32(NumOps) << 26,
		"all-ones":     0xFFFFFFFF,
		"r-dirty-low":  EncR(ADD, 3, 4, 5) | 1,
		"mvh-dirty":    EncR(MVH, 9, 1, 0),
		"cmp-dirty":    EncR(CMP, 2, 7, 8),
		"jr-dirty":     EncJR(backend.RegRA) | 1<<21,
		"shift-range":  EncI(LSLI, 1, 2, 31) | 0x20,
		"branch-dirty": EncBr(BGT, -3) | 1<<20,
	}
}

// FuzzOb0Decode fuzzes the strict word decoder: it must never panic, must
// reject damaged encodings as INVALID, and every word it accepts must
// re-encode to exactly the same bits (the fixed-point property that keeps
// the assembler, lowerer, disassembler and simulator in one universe).
// Seeds beyond f.Add live in testdata/fuzz/FuzzOb0Decode (see
// TestRegenOb0FuzzCorpus).
func FuzzOb0Decode(f *testing.F) {
	for _, w := range ob0DecodeSeeds() {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		if s := Disassemble(0, w); s == "" {
			t.Fatalf("Disassemble(%#08x) is empty", w)
		}
		if in.Op == INVALID {
			return
		}
		if got := reencode(in); got != w {
			t.Fatalf("decode(%#08x) = %+v re-encodes to %#08x", w, in, got)
		}
		// The def/use metadata must stay in the register file no matter
		// what the operands are.
		if d := in.Def(); d < -1 || d > 31 {
			t.Fatalf("decode(%#08x): def %d out of range", w, d)
		}
		for _, u := range in.Uses(nil) {
			if u > 31 {
				t.Fatalf("decode(%#08x): use %d out of range", w, u)
			}
		}
	})
}

// ob0AsmSeeds are the corpus seeds for FuzzOb0Asm: a routine-shaped
// program exercising every mnemonic family, plus the malformed shapes the
// assembler must reject without crashing (missing operands, immediates
// beyond encoder ranges, bad registers, duplicate labels).
func ob0AsmSeeds() map[string]string {
	return map[string]string{
		"routine": `; corpus seed: every family
top:
  li   $t0, 0x12345
  mvhi $t1, 0x100
  iori $t1, $t1, 0x44   ; comment
  add  $t2, $t0, $t1
  sub  $t3, $t2, 7
  ldw  $t4, 8($db)
  sth  $t4, table($z)
  cmp  $t4, $t0
  beq  done
  mul  $t5, $t4, $t0
  mvh  $t6
  jla  top
  jlr  $ra, $t6
  svc  5
done:
  move $t7, $t5
  not  $t8, $t7
  neg  $t9, $t8
  jr   $ra
table:
  .word 0x48
  brk 2
`,
		"empty":        "",
		"label-only":   "a:\nb: c:\n",
		"no-operands":  "move\n",
		"word-bare":    ".word\n",
		"bad-reg":      "add $q, $t0, $t1\n",
		"imm-overflow": "addi $t0, $t0, 70000\n",
		"shift-range":  "lsli $t0, $t0, 32\n",
		"jump-range":   "ja 0x4000000\n",
		"branch-far":   "beq 40000\n",
		"dup-label":    "x:\nx:\n",
		"unknown-op":   "frobnicate $t0\n",
	}
}

// FuzzOb0Asm throws arbitrary source text at the ob0 assembler: it must
// reject malformed programs with errors, never panic, and every word of a
// program it accepts must disassemble and — when it decodes as an
// instruction — survive the decode/re-encode fixed point. Seeds beyond
// f.Add live in testdata/fuzz/FuzzOb0Asm (see TestRegenOb0FuzzCorpus).
func FuzzOb0Asm(f *testing.F) {
	for _, src := range ob0AsmSeeds() {
		f.Add(src)
	}
	extern := map[string]uint32{"EXT_A": 0x40, "EXT_BIG": 0x01000040}
	f.Fuzz(func(t *testing.T, src string) {
		code, labels, err := Assemble(src, extern)
		if err != nil {
			return
		}
		for l, at := range labels {
			if int(at) > len(code) {
				t.Fatalf("label %q = %d beyond %d emitted words", l, at, len(code))
			}
		}
		for i, w := range code {
			if s := Disassemble(uint32(i), w); s == "" {
				t.Fatalf("word %d (%#08x) has empty disassembly", i, w)
			}
			if in := Decode(w); in.Op != INVALID {
				if got := reencode(in); got != w {
					t.Fatalf("word %d: %#08x re-encodes to %#08x", i, w, got)
				}
			}
		}
	})
}

// TestRegenOb0FuzzCorpus rewrites the checked-in fuzz corpora from the
// seed maps (run with REGEN_FUZZ_CORPUS=1 after an encoding or assembler
// change); normally it just asserts the checked-in files match the seeds.
func TestRegenOb0FuzzCorpus(t *testing.T) {
	regen := os.Getenv("REGEN_FUZZ_CORPUS") != ""
	check := func(target, name, want string) {
		t.Helper()
		dir := filepath.Join("testdata", "fuzz", target)
		path := filepath.Join(dir, name)
		if regen {
			if err := os.MkdirAll(dir, 0o777); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o666); err != nil {
				t.Fatal(err)
			}
			return
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (set REGEN_FUZZ_CORPUS=1 to regenerate)", err)
		}
		if string(got) != want {
			t.Errorf("%s/%s is stale (set REGEN_FUZZ_CORPUS=1 to regenerate)", target, name)
		}
	}
	for name, w := range ob0DecodeSeeds() {
		check("FuzzOb0Decode", name, fmt.Sprintf("go test fuzz v1\nuint32(%d)\n", w))
	}
	for name, src := range ob0AsmSeeds() {
		check("FuzzOb0Asm", name, fmt.Sprintf("go test fuzz v1\nstring(%q)\n", src))
	}
}
