package ob0

import (
	"sync"

	"tnsr/internal/millicode"
)

// MilliSource is the ob0 port of the TNS/R millicode. The runtime contract
// — memory layout, pointer area, BREAK/SYSCALL protocol, entry register
// conventions and label names — is the millicode package's and is
// identical across backends; only the instruction sequences differ. The
// port is systematic:
//
//   - MIPS delay slots disappear. Slot instructions needed on both paths
//     of a branch (the pointer-area mvhi in EXIT, the PEP mask in XCAL)
//     are hoisted above it; slot instructions belonging to the taken path
//     (the PMap/EMap loads before "b") move before the jump; dead-slot
//     fillers are simply dropped.
//   - MIPS compare-and-branch becomes cmp/cmpi + a flag branch. A cmp can
//     serve several branches because only cmp/cmpi write flags (see the
//     beq/blt pair after the one cmpi in MOVB).
//   - lui becomes mvhi; non-trapping addu/subu become ob0's plain
//     add/sub; loads and stores get ob0 mnemonics.
const MilliSource = `
; ---------------------------------------------------------------- EXIT ---
MILLI_EXIT:
  add   $mt, $db, $l        ; marker: ret at L-2 words, env L-1, oldL L-0
  ldhu  $t1, -4($mt)        ; t1 = TNS return address
  ldhu  $t2, -2($mt)        ; t2 = saved ENV (space bit source)
  ldhu  $t3, 0($mt)         ; t3 = caller L (TNS words)
  lsli  $t4, $t0, 1
  addi  $t4, $t4, 6         ; (3+k)*2 bytes
  sub   $s, $l, $t4         ; S = L - 3 - k
  lsli  $l, $t3, 1          ; restore L (byte form)
  ; env = (env & ~0x100) | (marker & 0x100): propagate the caller's space
  li    $t5, 0x100
  and   $t6, $t2, $t5
  nor   $t5, $t5, $z
  and   $env, $env, $t5
  ior   $env, $env, $t6
  ; halt sentinel?
  li    $t5, 0xFFFF
  cmp   $t1, $t5
  beq   exit_halt
  ; select the PMap of the caller's space
  mvhi  $t10, 2             ; pointer area (hoisted from the MIPS slot)
  andi  $t7, $t2, 0x100
  cmp   $t7, $z
  bne   exit_lib
  ldw   $t8, PTRO_UPMAP_BASE($t10)
  ldw   $t9, PTRO_UPMAP_OFF($t10)
  b     exit_look
exit_lib:
  ldw   $t8, PTRO_LPMAP_BASE($t10)
  ldw   $t9, PTRO_LPMAP_OFF($t10)
exit_look:
  cmp   $t8, $z
  beq   exit_fall           ; no PMap registered for that space
  ; the packed-PMap lookup: group base + per-word offset
  lsri  $t5, $t1, 3         ; group number
  lsli  $t5, $t5, 2
  add   $t5, $t5, $t8
  ldw   $t5, 0($t5)         ; anchor: RISC byte address of the group
  add   $t6, $t1, $t9
  ldbu  $t6, 0($t6)         ; per-word offset (RISC words)
  cmp   $t6, 0xFF
  beq   exit_fall
  lsli  $t6, $t6, 2
  add   $t5, $t5, $t6
  jr    $t5
exit_fall:
  move  $mt, $t1            ; resume interpretation at the return point
  brk   1
exit_halt:
  brk   2

; ---------------------------------------------------------------- XCAL ---
MILLI_XCAL:
  mvhi  $t6, 2              ; pointer area
  andi  $t3, $t1, 0x8000    ; space bit of the PLabel
  andi  $t4, $t1, 0x7FFF    ; PEP index (both arms need it)
  cmp   $t3, $z
  bne   xcal_lib
  ldw   $t5, PTRO_UEMAP($t6)
  b     xcal_go
xcal_lib:
  ldw   $t5, PTRO_LEMAP($t6)
xcal_go:
  cmp   $t5, $z
  beq   xcal_fall           ; no EMap for that space at all
  lsli  $t4, $t4, 2
  add   $t5, $t5, $t4
  ldw   $t5, 0($t5)         ; entry byte address, or 0
  cmp   $t5, $z
  beq   xcal_fall
  ; The call site leaves the PLabel on the architectural stack ($env's RP
  ; still counts it) so a missed dispatch can redo the XCAL exactly; a hit
  ; consumes it here by dropping one RP position before the prologue reads
  ; $env for the stack marker.
  andi  $t3, $env, 7
  addi  $t3, $t3, -1
  andi  $t3, $t3, 7
  andi  $env, $env, 0x1F8
  ior   $env, $env, $t3
  jr    $t5                 ; to the translated prologue; $t0 = return addr
xcal_fall:
  brk   1                   ; $mt = address of the XCAL; interpreter redoes it

; ---------------------------------------------------------------- SCAL ---
MILLI_SCAL:
  mvhi  $t6, 2              ; pointer area
  ldw   $t5, PTRO_LEMAP($t6)
  cmp   $t5, $z
  beq   scal_fall
  lsli  $t4, $t1, 2
  add   $t5, $t5, $t4
  ldw   $t5, 0($t5)
  cmp   $t5, $z
  beq   scal_fall
  jr    $t5
scal_fall:
  brk   1                   ; $mt = address of the SCAL

; ---------------------------------------------------------------- MOVB ---
; $t0 src bytes, $t1 dst bytes, $t2 signed count; preserves $cc/$k/$v.
MILLI_MOVB:
  lsli  $t2, $t2, 16
  asri  $t2, $t2, 16        ; sign-extend the 16-bit count
  cmp   $t2, $z
  beq   movb_done
  blt   movb_rev            ; flags survive the beq: one cmp, two branches
movb_fwd:
  add   $t4, $db, $t0
  ldbu  $t4, 0($t4)
  add   $t5, $db, $t1
  stb   $t4, 0($t5)
  addi  $t0, $t0, 1
  addi  $t1, $t1, 1
  addi  $t2, $t2, -1
  cmp   $t2, $z
  bne   movb_fwd
  jr    $ra
movb_rev:
  sub   $t2, $z, $t2        ; |count|
  add   $t0, $t0, $t2
  add   $t1, $t1, $t2
movb_rloop:
  addi  $t0, $t0, -1
  addi  $t1, $t1, -1
  add   $t4, $db, $t0
  ldbu  $t4, 0($t4)
  add   $t5, $db, $t1
  stb   $t4, 0($t5)
  addi  $t2, $t2, -1
  cmp   $t2, $z
  bne   movb_rloop
movb_done:
  jr    $ra

; ---------------------------------------------------------------- MOVW ---
; $t0 src words, $t1 dst words, $t2 signed count.
MILLI_MOVW:
  lsli  $t2, $t2, 16
  asri  $t2, $t2, 16
  lsli  $t0, $t0, 1         ; to byte addresses
  lsli  $t1, $t1, 1
  cmp   $t2, $z
  beq   movw_done
  blt   movw_rev
movw_fwd:
  add   $t4, $db, $t0
  ldhu  $t4, 0($t4)
  add   $t5, $db, $t1
  sth   $t4, 0($t5)
  addi  $t0, $t0, 2
  addi  $t1, $t1, 2
  addi  $t2, $t2, -1
  cmp   $t2, $z
  bne   movw_fwd
  jr    $ra
movw_rev:
  sub   $t2, $z, $t2
  lsli  $t6, $t2, 1
  add   $t0, $t0, $t6
  add   $t1, $t1, $t6
movw_rloop:
  addi  $t0, $t0, -2
  addi  $t1, $t1, -2
  add   $t4, $db, $t0
  ldhu  $t4, 0($t4)
  add   $t5, $db, $t1
  sth   $t4, 0($t5)
  addi  $t2, $t2, -1
  cmp   $t2, $z
  bne   movw_rloop
movw_done:
  jr    $ra

; ---------------------------------------------------------------- CMPB ---
; $t0 a bytes, $t1 b bytes, $t2 count; sets $cc to -1/0/1.
MILLI_CMPB:
  move  $cc, $z
cmpb_loop:
  cmp   $t2, $z
  beq   cmpb_done
  add   $t4, $db, $t0
  ldbu  $t4, 0($t4)
  add   $t5, $db, $t1
  ldbu  $t5, 0($t5)
  addi  $t2, $t2, -1        ; the MIPS slot decrement, moved up
  cmp   $t4, $t5
  bne   cmpb_diff
  addi  $t0, $t0, 1
  addi  $t1, $t1, 1
  b     cmpb_loop
cmpb_diff:
  sub   $cc, $t4, $t5       ; sign carries the relation
cmpb_done:
  jr    $ra

; ---------------------------------------------------------------- SCNB ---
; $t0 address, $t1 test byte, $t2 limit; returns skip count in $t0,
; $cc = 0 if found else 1.
MILLI_SCNB:
  move  $t3, $z             ; skipped so far
scnb_loop:
  cmp   $t3, $t2
  beq   scnb_miss
  add   $t4, $db, $t0
  add   $t4, $t4, $t3
  ldbu  $t4, 0($t4)
  cmp   $t4, $t1
  beq   scnb_hit
  addi  $t3, $t3, 1
  b     scnb_loop
scnb_hit:
  move  $t0, $t3
  move  $cc, $z
  jr    $ra
scnb_miss:
  move  $t0, $t2
  iori  $cc, $z, 1
  jr    $ra
`

// BuildMillicode assembles the ob0 millicode and returns its code words
// plus the label map. Like millicode.Build it is memoized and returns
// private copies.
func BuildMillicode() ([]uint32, map[string]uint32) {
	milliOnce.Do(func() {
		milliCode, milliLabels = MustAssemble(MilliSource, map[string]uint32{
			"PTRO_UPMAP_BASE": millicode.PtrUserPMapBase - millicode.PtrArea,
			"PTRO_UPMAP_OFF":  millicode.PtrUserPMapOff - millicode.PtrArea,
			"PTRO_LPMAP_BASE": millicode.PtrLibPMapBase - millicode.PtrArea,
			"PTRO_LPMAP_OFF":  millicode.PtrLibPMapOff - millicode.PtrArea,
			"PTRO_UEMAP":      millicode.PtrUserEMap - millicode.PtrArea,
			"PTRO_LEMAP":      millicode.PtrLibEMap - millicode.PtrArea,
		})
	})
	code := append([]uint32(nil), milliCode...)
	labels := make(map[string]uint32, len(milliLabels))
	for k, v := range milliLabels {
		labels[k] = v
	}
	return code, labels
}

var (
	milliOnce   sync.Once
	milliCode   []uint32
	milliLabels map[string]uint32
)
