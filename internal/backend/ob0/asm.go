package ob0

import (
	"fmt"
	"strconv"
	"strings"

	"tnsr/internal/backend"
)

// Assemble translates ob0 assembly text into instruction words. It exists
// for the hand-coded millicode routines and for tests, and mirrors the
// risc assembler's syntax:
//
//	label:                     define a label (word index)
//	op operands  ; comment     one instruction, operands comma-separated
//	.word n                    a raw data word
//
// Operands use the shared register names of backend.RegName ($z, $r0..$r7,
// $db, $l, $s, $cc, $k, $v, $env, $t0..$t13, $mt, $ra, or $N numeric).
// Memory operands are "off(base)" where off may be a named constant.
// Branch and jump targets are labels or absolute word indexes.
// Pseudo-instructions: nop, move, li (32-bit constant), b (alias of ja),
// not, neg. R-type mnemonics accept an immediate third operand and rewrite
// to the immediate opcode (add -> addi, ior -> iori, lsl -> lsli, cmp ->
// cmpi, ...).
//
// extern provides named constants (runtime table addresses) usable
// wherever an immediate or li operand is expected.
func Assemble(src string, extern map[string]uint32) ([]uint32, map[string]uint32, error) {
	a := &oasm{labels: map[string]uint32{}, extern: extern}
	// Pass 1: measure, collect labels.
	if err := a.scan(src, false); err != nil {
		return nil, nil, err
	}
	a.out = make([]uint32, 0, a.pc)
	a.pc = 0
	// Pass 2: emit.
	if err := a.scan(src, true); err != nil {
		return nil, nil, err
	}
	return a.out, a.labels, nil
}

// MustAssemble panics on error; for fixed millicode sources.
func MustAssemble(src string, extern map[string]uint32) ([]uint32, map[string]uint32) {
	code, labels, err := Assemble(src, extern)
	if err != nil {
		panic(err)
	}
	return code, labels
}

type oasm struct {
	labels map[string]uint32
	extern map[string]uint32
	out    []uint32
	pc     uint32
	emit   bool
}

func (a *oasm) scan(src string, emit bool) error {
	a.emit = emit
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t(") {
				break
			}
			if !emit {
				if _, dup := a.labels[line[:i]]; dup {
					return fmt.Errorf("line %d: duplicate label %q", ln+1, line[:i])
				}
				a.labels[line[:i]] = a.pc
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.instr(line); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return nil
}

func (a *oasm) put(w uint32) {
	if a.emit {
		a.out = append(a.out, w)
	}
	a.pc++
}

// rOps are the three-register mnemonics; immFor rewrites them when the
// third operand is an immediate.
var rOps = map[string]Op{
	"add": ADD, "addt": ADDT, "sub": SUB, "subt": SUBT, "and": AND,
	"ior": IOR, "xor": XOR, "nor": NOR, "lsl": LSL, "lsr": LSR, "asr": ASR,
	"slt": SLT, "sltu": SLTU, "mul": MUL, "mulu": MULU,
	"dvq": DVQ, "dvqu": DVQU,
}

var immFor = map[Op]Op{
	ADD: ADDI, ADDT: ADTI, AND: ANDI, IOR: IORI, XOR: XORI,
	SLT: SLTI, SLTU: SLTIU, LSL: LSLI, LSR: LSRI, ASR: ASRI,
}

var iOps = map[string]Op{
	"addi": ADDI, "adti": ADTI, "andi": ANDI, "iori": IORI, "xori": XORI,
	"slti": SLTI, "sltiu": SLTIU, "lsli": LSLI, "lsri": LSRI, "asri": ASRI,
}

var memOps = map[string]Op{
	"ldb": LDB, "ldbu": LDBU, "ldh": LDH, "ldhu": LDHU, "ldw": LDW,
	"stb": STB, "sth": STH, "stw": STW,
}

var brOps = map[string]Op{
	"beq": BEQ, "bne": BNE, "blt": BLT, "bge": BGE, "ble": BLE, "bgt": BGT,
}

func (a *oasm) instr(line string) (err error) {
	// The encoders panic on out-of-range fields (their callers inside the
	// lowerer guarantee ranges), and a malformed line can underflow the
	// operand list; surface both as positioned assembly errors rather than
	// crashes. No word is emitted before the panic point, so the
	// two-pass width accounting stays consistent on the error path.
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%q: %v", line, p)
		}
	}()
	fields := strings.Fields(line)
	op := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	ops := splitOperands(rest)
	switch op {
	case ".word":
		v, err := a.imm(ops[0])
		if err != nil {
			return err
		}
		a.put(uint32(v))
		return nil
	case "nop":
		a.put(Nop)
		return nil
	case "move":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rb, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncR(ADD, ra, rb, backend.RegZero))
		return nil
	case "not":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rb, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncR(NOR, ra, rb, backend.RegZero))
		return nil
	case "neg":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rb, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncR(SUB, ra, backend.RegZero, rb))
		return nil
	case "li":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		a.emitLI(ra, uint32(v))
		return nil
	case "mvh":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.put(EncR(MVH, ra, 0, 0))
		return nil
	case "mvhi":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		a.put(EncI(MVHI, ra, 0, int32(v)))
		return nil
	case "cmp":
		rb, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		if !isReg(ops[1]) {
			v, err := a.imm(ops[1])
			if err != nil {
				return err
			}
			a.put(EncI(CMPI, 0, rb, int32(v)))
			return nil
		}
		rc, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncR(CMP, 0, rb, rc))
		return nil
	case "cmpi":
		rb, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		a.put(EncI(CMPI, 0, rb, int32(v)))
		return nil
	case "b", "ja", "jla":
		t, err := a.imm(ops[0])
		if err != nil {
			return err
		}
		o := JA
		if op == "jla" {
			o = JLA
		}
		a.put(EncJ(o, uint32(t)))
		return nil
	case "jr":
		rb, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.put(EncJR(rb))
		return nil
	case "jlr":
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rb, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.put(EncJLR(ra, rb))
		return nil
	case "brk", "svc":
		var code int64
		if len(ops) > 0 && ops[0] != "" {
			v, err := a.imm(ops[0])
			if err != nil {
				return err
			}
			code = v
		}
		if op == "brk" {
			a.put(EncBrk(uint32(code)))
		} else {
			a.put(EncSvc(uint32(code)))
		}
		return nil
	}

	if o, ok := rOps[op]; ok {
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rb, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		if len(ops) == 3 && !isReg(ops[2]) {
			imm, err := a.imm(ops[2])
			if err != nil {
				return err
			}
			iop, ok := immFor[o]
			if !ok {
				return fmt.Errorf("%s does not take an immediate", op)
			}
			a.put(EncI(iop, ra, rb, int32(imm)))
			return nil
		}
		rc, err := a.reg(ops[2])
		if err != nil {
			return err
		}
		a.put(EncR(o, ra, rb, rc))
		return nil
	}
	if o, ok := iOps[op]; ok {
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rb, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		v, err := a.imm(ops[2])
		if err != nil {
			return err
		}
		a.put(EncI(o, ra, rb, int32(v)))
		return nil
	}
	if o, ok := memOps[op]; ok {
		ra, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		a.put(EncM(o, ra, base, off))
		return nil
	}
	if o, ok := brOps[op]; ok {
		disp, err := a.branchDisp(ops[0])
		if err != nil {
			return err
		}
		a.put(EncBr(o, disp))
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

// emitLI loads a 32-bit constant with a deterministic width: one word for
// values expressible by iori/addi, an mvhi(+iori) pair otherwise.
func (a *oasm) emitLI(ra uint8, v uint32) {
	if v <= 0xFFFF {
		a.put(EncI(IORI, ra, backend.RegZero, int32(v)))
		return
	}
	if int32(v) >= -32768 && int32(v) < 0 {
		a.put(EncI(ADDI, ra, backend.RegZero, int32(v)))
		return
	}
	a.put(EncI(MVHI, ra, 0, int32(v>>16)))
	if v&0xFFFF != 0 {
		a.put(EncI(IORI, ra, ra, int32(v&0xFFFF)))
	}
}

var regNames = func() map[string]uint8 {
	m := map[string]uint8{}
	for r := uint8(0); r < 32; r++ {
		m[backend.RegName(r)] = r
		m[fmt.Sprintf("$%d", r)] = r
	}
	return m
}()

func isReg(s string) bool {
	_, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	return ok
}

func (a *oasm) reg(s string) (uint8, error) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return r, nil
}

func (a *oasm) imm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.extern[s]; ok {
		return int64(v), nil
	}
	if l, ok := a.labels[s]; ok {
		return int64(l), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var v int64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseInt(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseInt(s, 10, 64)
	}
	if err != nil {
		if !a.emit {
			return 0, nil // labels may be forward references in pass 1
		}
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (a *oasm) memOperand(s string) (int32, uint8, error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '(')
	j := strings.IndexByte(s, ')')
	if i < 0 || j < i {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if i > 0 {
		v, err := a.imm(s[:i])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := a.reg(s[i+1 : j])
	if err != nil {
		return 0, 0, err
	}
	return int32(off), base, nil
}

func (a *oasm) branchDisp(s string) (int32, error) {
	t, err := a.imm(s)
	if err != nil {
		return 0, err
	}
	if !a.emit {
		return 0, nil
	}
	return int32(t) - int32(a.pc) - 1, nil
}

func splitOperands(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
