package ob0_test

import (
	"testing"

	"tnsr/internal/backend/backendtest"
	"tnsr/internal/backend/ob0"
)

// TestConformance holds the ob0 target to the same backend contract as the
// MIPS default. The def/use adapter skips control flow and the host
// protocol, which the single-word property test cannot exercise; the flag
// and H side channels start identical in both property runs, so CMP/MVH
// and friends stay in scope.
func TestConformance(t *testing.T) {
	backendtest.Contract(t, ob0.Default, func(w uint32) (int, []uint8, bool) {
		in := ob0.Decode(w)
		switch {
		case in.Op == ob0.INVALID, in.Op.IsBranch(), in.Op.IsJump(),
			in.Op == ob0.BRK, in.Op == ob0.SVC:
			return 0, nil, false
		}
		return in.Def(), in.Uses(nil), true
	})
}
