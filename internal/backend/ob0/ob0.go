package ob0

import (
	"tnsr/internal/backend"
	"tnsr/internal/millicode"
)

// BackendID is the codefile identity byte of the ob0 target.
const BackendID uint8 = 1

// codeWindow maps the code space read-only into data addresses; the base
// is part of the cross-backend runtime contract.
const codeWindow = millicode.CodeWindow

// B implements backend.Backend for the ob0 target. It is stateless — the
// simple timing model has no configuration.
type B struct{}

// Default is the registry instance.
var Default = &B{}

func init() { backend.Register(Default) }

func (b *B) ID() uint8                  { return BackendID }
func (b *B) Name() string               { return "ob0" }
func (b *B) Traits() backend.Traits     { return backend.Traits{DelaySlots: false} }
func (b *B) Disasm(pc, w uint32) string { return Disassemble(pc, w) }

// Millicode returns the assembled ob0 millicode and its entry labels.
func (b *B) Millicode() (code []uint32, labels map[string]uint32) {
	return BuildMillicode()
}

// NewSim constructs an ob0 simulator.
func (b *B) NewSim(code []uint32, memBytes int) backend.Sim {
	return NewSim(code, memBytes)
}
