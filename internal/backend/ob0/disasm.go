package ob0

import (
	"fmt"

	"tnsr/internal/backend"
)

// Disassemble renders the instruction at word index pc.
func Disassemble(pc uint32, w uint32) string {
	in := Decode(w)
	r := backend.RegName
	switch {
	case in.Op == INVALID:
		return fmt.Sprintf(".word 0x%08x", w)
	case in.Op == CMP:
		return fmt.Sprintf("cmp %s, %s", r(in.B), r(in.C))
	case in.Op == MVH:
		return fmt.Sprintf("mvh %s", r(in.A))
	case in.Op.IsRType():
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.A), r(in.B), r(in.C))
	case in.Op == CMPI:
		return fmt.Sprintf("cmpi %s, %d", r(in.B), in.Imm)
	case in.Op == MVHI:
		return fmt.Sprintf("mvhi %s, %d", r(in.A), in.Imm)
	case in.Op.IsIType():
		if w == Nop {
			return "nop"
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.A), r(in.B), in.Imm)
	case in.Op.IsLoad() || in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.A), in.Imm, r(in.B))
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %d", in.Op, int64(pc)+1+int64(in.Imm))
	case in.Op == JA || in.Op == JLA:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case in.Op == JR:
		return fmt.Sprintf("jr %s", r(in.B))
	case in.Op == JLR:
		return fmt.Sprintf("jlr %s, %s", r(in.A), r(in.B))
	case in.Op == BRK || in.Op == SVC:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}
