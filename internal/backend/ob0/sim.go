package ob0

import (
	"fmt"

	"tnsr/internal/backend"
)

// Sim is the ob0 processor simulator. It embeds the backend-shared CPU
// (registers, memory, stop/breakpoint/observation protocol) and adds the
// ob0-private architectural state: the N/Z/V condition flags and the H
// special register.
//
// The timing model is a simple single-issue pipeline with no delay slots:
// one cycle per instruction, plus one for a taken branch (refetch), one
// for a load or store (memory port), three for a multiply and twenty for
// a divide. There are no modelled caches — ob0 exists to prove the
// backend seam, not to re-run the paper's R3000 timing study.
type Sim struct {
	backend.CPU

	// H holds the high half of a multiply or the remainder of a divide
	// (read by MVH).
	H uint32

	// FlagZ/FlagN/FlagV are the condition flags, written only by CMP and
	// CMPI, tested by the conditional branches.
	FlagZ, FlagN, FlagV bool

	skipBP bool
}

// NewSim creates an ob0 simulator over the given code image with memBytes
// bytes of data memory.
func NewSim(code []uint32, memBytes int) *Sim {
	return &Sim{CPU: backend.CPU{Code: code, Mem: make([]byte, memBytes)}}
}

// ResumeAt clears the stop condition and continues execution at the given
// word index on the next Run.
func (s *Sim) ResumeAt(pc uint32) {
	s.PC = pc
	s.Stopped = false
	s.BreakCode = 0
	s.Trap = backend.TrapNone
	s.BPHit = false
	s.skipBP = true
}

func (s *Sim) trap(code int) {
	s.Trap = code
	s.TrapPC = s.PC
	s.Stopped = true
}

// Run executes instructions until a BRK, a trap, or the instruction budget
// is exhausted (0 means unlimited). It returns an error only on runaway
// execution past the budget.
func (s *Sim) Run(maxInstrs int64) error {
	start := s.Instrs
	for !s.Stopped {
		s.step()
		if maxInstrs > 0 && s.Instrs-start >= maxInstrs {
			return fmt.Errorf("ob0: exceeded %d instructions at PC=%d", maxInstrs, s.PC)
		}
	}
	return nil
}

func (s *Sim) step() {
	pc := s.PC
	if s.Breakpoints != nil && s.Breakpoints[pc] && !s.skipBP {
		s.BPHit = true
		s.Stopped = true
		return
	}
	s.skipBP = false
	if int(pc) >= len(s.Code) {
		s.trap(backend.TrapBadInstr)
		return
	}
	in := Decode(s.Code[pc])
	s.Cycles++
	s.Instrs++
	if s.OnInstr != nil {
		s.OnInstr(pc)
	}

	npc := pc + 1
	R := &s.Reg
	switch in.Op {
	case ADD:
		R[in.A] = R[in.B] + R[in.C]
	case ADDT:
		a, b := R[in.B], R[in.C]
		sum := a + b
		if (a^sum)&(b^sum)&0x80000000 != 0 {
			s.trap(backend.TrapOverflow)
			return
		}
		R[in.A] = sum
	case SUB:
		R[in.A] = R[in.B] - R[in.C]
	case SUBT:
		a, b := R[in.B], R[in.C]
		diff := a - b
		if (a^b)&(a^diff)&0x80000000 != 0 {
			s.trap(backend.TrapOverflow)
			return
		}
		R[in.A] = diff
	case AND:
		R[in.A] = R[in.B] & R[in.C]
	case IOR:
		R[in.A] = R[in.B] | R[in.C]
	case XOR:
		R[in.A] = R[in.B] ^ R[in.C]
	case NOR:
		R[in.A] = ^(R[in.B] | R[in.C])
	case LSL:
		R[in.A] = R[in.B] << (R[in.C] & 31)
	case LSR:
		R[in.A] = R[in.B] >> (R[in.C] & 31)
	case ASR:
		R[in.A] = uint32(int32(R[in.B]) >> (R[in.C] & 31))
	case SLT:
		R[in.A] = b2u(int32(R[in.B]) < int32(R[in.C]))
	case SLTU:
		R[in.A] = b2u(R[in.B] < R[in.C])
	case CMP:
		s.setFlags(R[in.B], R[in.C])
	case MUL:
		p := int64(int32(R[in.B])) * int64(int32(R[in.C]))
		R[in.A] = uint32(p)
		s.H = uint32(p >> 32)
		s.Cycles += 3
	case MULU:
		p := uint64(R[in.B]) * uint64(R[in.C])
		R[in.A] = uint32(p)
		s.H = uint32(p >> 32)
		s.Cycles += 3
	case DVQ:
		// Same quotient/remainder convention as the default target: divide
		// by zero and the INT_MIN/-1 overflow leave quotient/H as the
		// millicode's pre-division test expects (millicode raises the
		// TrapDivZero BREAK before dividing, so these cases are unreachable
		// from translated code; mirror the MIPS simulator anyway).
		a, b := int32(R[in.B]), int32(R[in.C])
		if b != 0 && !(a == -2147483648 && b == -1) {
			R[in.A] = uint32(a / b)
			s.H = uint32(a % b)
		} else if b != 0 {
			R[in.A] = uint32(a)
			s.H = 0
		}
		s.Cycles += 20
	case DVQU:
		a, b := R[in.B], R[in.C]
		if b != 0 {
			R[in.A] = a / b
			s.H = a % b
		}
		s.Cycles += 20
	case MVH:
		R[in.A] = s.H
	case ADDI:
		R[in.A] = R[in.B] + uint32(in.Imm)
	case ADTI:
		a, b := R[in.B], uint32(in.Imm)
		sum := a + b
		if (a^sum)&(b^sum)&0x80000000 != 0 {
			s.trap(backend.TrapOverflow)
			return
		}
		R[in.A] = sum
	case ANDI:
		R[in.A] = R[in.B] & uint32(in.Imm)
	case IORI:
		R[in.A] = R[in.B] | uint32(in.Imm)
	case XORI:
		R[in.A] = R[in.B] ^ uint32(in.Imm)
	case SLTI:
		R[in.A] = b2u(int32(R[in.B]) < in.Imm)
	case SLTIU:
		R[in.A] = b2u(R[in.B] < uint32(in.Imm))
	case LSLI:
		R[in.A] = R[in.B] << uint32(in.Imm)
	case LSRI:
		R[in.A] = R[in.B] >> uint32(in.Imm)
	case ASRI:
		R[in.A] = uint32(int32(R[in.B]) >> uint32(in.Imm))
	case MVHI:
		R[in.A] = uint32(in.Imm) << 16
	case CMPI:
		s.setFlags(R[in.B], uint32(in.Imm))
	case LDB, LDBU, LDH, LDHU, LDW:
		if !s.load(in) {
			return
		}
	case STB, STH, STW:
		if !s.store(in) {
			return
		}
	case BEQ:
		if s.FlagZ {
			npc = s.branchTarget(in)
		}
	case BNE:
		if !s.FlagZ {
			npc = s.branchTarget(in)
		}
	case BLT:
		if s.FlagN != s.FlagV {
			npc = s.branchTarget(in)
		}
	case BGE:
		if s.FlagN == s.FlagV {
			npc = s.branchTarget(in)
		}
	case BLE:
		if s.FlagZ || s.FlagN != s.FlagV {
			npc = s.branchTarget(in)
		}
	case BGT:
		if !s.FlagZ && s.FlagN == s.FlagV {
			npc = s.branchTarget(in)
		}
	case JA:
		npc = in.Target
		s.Cycles++
	case JLA:
		R[backend.RegRA] = (pc + 1) << 2
		npc = in.Target
		s.Cycles++
	case JR:
		npc = R[in.B] >> 2
		s.Cycles++
	case JLR:
		R[in.A] = (pc + 1) << 2
		npc = R[in.B] >> 2
		s.Cycles++
	case SVC:
		if s.OnSyscall != nil {
			s.OnSyscall(&s.CPU, in.Target)
		}
	case BRK:
		s.BreakCode = in.Target
		s.Stopped = true
		return // PC stays at the BRK for the host to inspect
	default:
		s.trap(backend.TrapBadInstr)
		return
	}
	R[0] = 0
	s.PC = npc
}

// setFlags computes flags from the subtraction a - b: Z if equal, N if the
// 32-bit difference is negative, V if the signed subtraction overflowed.
// The branch conditions (e.g. BLT: N != V) then realise the signed
// comparisons exactly.
func (s *Sim) setFlags(a, b uint32) {
	d := a - b
	s.FlagZ = d == 0
	s.FlagN = d&0x80000000 != 0
	s.FlagV = (a^b)&(a^d)&0x80000000 != 0
}

func (s *Sim) branchTarget(in Instr) uint32 {
	s.Cycles++ // taken-branch refetch
	return s.PC + 1 + uint32(in.Imm)
}

func (s *Sim) load(in Instr) bool {
	addr := s.Reg[in.B] + uint32(in.Imm)
	var v uint32
	switch in.Op {
	case LDB, LDBU:
		if int(addr) >= len(s.Mem) {
			s.trap(backend.TrapAddress)
			return false
		}
		v = uint32(s.Mem[addr])
		if in.Op == LDB {
			v = uint32(int32(int8(v)))
		}
	case LDH, LDHU:
		if addr&1 != 0 || int(addr)+1 >= len(s.Mem) {
			s.trap(backend.TrapAddress)
			return false
		}
		v = uint32(s.Mem[addr])<<8 | uint32(s.Mem[addr+1])
		if in.Op == LDH {
			v = uint32(int32(int16(v)))
		}
	case LDW:
		// The code window maps the code space read-only into data
		// addresses, same base as every backend (translated CASE tables
		// live in the code stream).
		if addr >= codeWindow {
			idx := (addr - codeWindow) >> 2
			if addr&3 != 0 || int(idx) >= len(s.Code) {
				s.trap(backend.TrapAddress)
				return false
			}
			s.Reg[in.A] = s.Code[idx]
			s.Cycles++
			return true
		}
		if addr&3 != 0 || int(addr)+3 >= len(s.Mem) {
			s.trap(backend.TrapAddress)
			return false
		}
		v = uint32(s.Mem[addr])<<24 | uint32(s.Mem[addr+1])<<16 |
			uint32(s.Mem[addr+2])<<8 | uint32(s.Mem[addr+3])
	}
	s.Reg[in.A] = v
	s.Cycles++
	return true
}

func (s *Sim) store(in Instr) bool {
	addr := s.Reg[in.B] + uint32(in.Imm)
	if s.ProtectedHi > s.ProtectedLo && addr >= s.ProtectedLo && addr < s.ProtectedHi {
		s.trap(backend.TrapProtected)
		return false
	}
	v := s.Reg[in.A]
	switch in.Op {
	case STB:
		if int(addr) >= len(s.Mem) {
			s.trap(backend.TrapAddress)
			return false
		}
		s.Mem[addr] = byte(v)
		if s.StoreTrace != nil {
			// Report the containing halfword so byte stores compare
			// against the interpreter's word-level trace.
			ha := addr &^ 1
			s.StoreTrace(ha, uint16(s.Mem[ha])<<8|uint16(s.Mem[ha+1]))
		}
	case STH:
		if addr&1 != 0 || int(addr)+1 >= len(s.Mem) {
			s.trap(backend.TrapAddress)
			return false
		}
		s.Mem[addr] = byte(v >> 8)
		s.Mem[addr+1] = byte(v)
		if s.StoreTrace != nil {
			s.StoreTrace(addr, uint16(v))
		}
	case STW:
		if addr&3 != 0 || int(addr)+3 >= len(s.Mem) {
			s.trap(backend.TrapAddress)
			return false
		}
		s.Mem[addr] = byte(v >> 24)
		s.Mem[addr+1] = byte(v >> 16)
		s.Mem[addr+2] = byte(v >> 8)
		s.Mem[addr+3] = byte(v)
	}
	s.Cycles++
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
