package ob0

import "tnsr/internal/backend"

// Def returns the number of the general register this instruction writes,
// or -1 if it writes none. Flag and H effects are reported separately
// (SetsFlags, WritesH) — they are ob0-private state, invisible to the
// shared CPU.
func (in Instr) Def() int {
	switch {
	case in.Op == CMP, in.Op == CMPI:
		return -1
	case in.Op.IsRType(), in.Op.IsIType(), in.Op.IsLoad():
		if in.A == 0 {
			return -1 // register 0 is hardwired
		}
		return int(in.A)
	case in.Op == JLA:
		return backend.RegRA
	case in.Op == JLR:
		if in.A == 0 {
			return -1
		}
		return int(in.A)
	}
	return -1
}

// Uses appends the numbers of the general registers this instruction reads
// to dst and returns it.
func (in Instr) Uses(dst []uint8) []uint8 {
	switch {
	case in.Op == MVH, in.Op == MVHI:
		return dst
	case in.Op.IsRType():
		return append(dst, in.B, in.C)
	case in.Op.IsIType(), in.Op.IsLoad():
		return append(dst, in.B)
	case in.Op.IsStore():
		return append(dst, in.A, in.B)
	case in.Op == JR, in.Op == JLR:
		return append(dst, in.B)
	}
	return dst
}

// SetsFlags reports whether the instruction writes the N/Z/V flags.
func (in Instr) SetsFlags() bool { return in.Op == CMP || in.Op == CMPI }

// ReadsFlags reports whether the instruction tests the N/Z/V flags.
func (in Instr) ReadsFlags() bool { return in.Op.IsBranch() }

// WritesH reports whether the instruction writes the H special register.
func (in Instr) WritesH() bool { return in.Op >= MUL && in.Op <= DVQU }

// ReadsH reports whether the instruction reads the H special register.
func (in Instr) ReadsH() bool { return in.Op == MVH }
