package ob0

import (
	"fmt"

	"tnsr/internal/backend"
	"tnsr/internal/millicode"
)

// Encode lowers the virtual instruction stream to ob0 words. Unlike the
// MIPS backend's 1:1 mapping, ob0 lowering changes instruction widths, so
// Encoded.Pos is a real remapping:
//
//   - Delay-slot nops vanish (0 words). The raw emitter always places an
//     explicit nop after every branch and jump, and the delay-slot
//     scheduler never runs for a target without delay slots, so the
//     instruction after a control transfer is a nop by construction —
//     anything else is an internal error, not a degradation.
//   - MIPS-shaped compare-and-branch becomes a cmp + flag-branch pair
//     (2 words). The zero-compare forms (blez &c) compare against $z.
//   - MULT/DIV fuse with the MFLO that, by the emitter's construction,
//     immediately follows them: the MFLO's destination becomes the
//     mul/dvq destination and the MFLO itself vanishes. A DIV used only
//     for its remainder is followed directly by MFHI instead; it lowers
//     to a dvq with destination $z, and MFHI lowers to mvh wherever it
//     appears (the H register survives until the next multiply or
//     divide, exactly like HI).
//   - LUI becomes mvhi; the trapping ADD/ADDI become addt/adti and the
//     non-trapping ADDU/ADDIU become ob0's plain add/addi; JAL/JALR
//     become the linking jla/jlr, whose link value (pc+1)<<2 points at
//     the instruction after the dropped slot nop — the same virtual
//     instruction a MIPS jal returns to.
//
// Labels resolve through Pos, so branch targets that pointed at dropped
// slot nops land on the instruction after them, which is what executing
// the nop would have reached.
func (b *B) Encode(ins []backend.Inst, labelAt func(backend.Label) (int32, error),
	base uint32) (backend.Encoded, error) {
	n := len(ins)
	width := make([]int8, n)
	fuseDest := make([]uint8, n) // MULT/DIV: general destination register
	consumed := make([]bool, n)  // MFLOs folded into a preceding MULT/DIV

	errAt := func(i int, format string, args ...interface{}) error {
		return fmt.Errorf("ob0: at RISC %d (tns %d): %s",
			i, ins[i].TNSAddr, fmt.Sprintf(format, args...))
	}

	// Pass A: widths and fusion.
	for i := range ins {
		if consumed[i] {
			continue
		}
		r := &ins[i]
		if i > 0 && !ins[i-1].IsWord && ins[i-1].Op.HasDelaySlot() {
			if !r.IsNop() {
				return backend.Encoded{}, errAt(i, "non-nop delay slot %s", r.Op)
			}
			continue // width 0
		}
		switch {
		case r.IsWord, r.HasLA:
			width[i] = 1
		case r.Op == backend.BEQ, r.Op == backend.BNE, r.Op == backend.BLEZ,
			r.Op == backend.BGTZ, r.Op == backend.BLTZ, r.Op == backend.BGEZ:
			width[i] = 2
		case r.Op == backend.MULT, r.Op == backend.MULTU,
			r.Op == backend.DIV, r.Op == backend.DIVU:
			width[i] = 1
			if i+1 < n && !ins[i+1].IsWord && ins[i+1].Op == backend.MFLO {
				fuseDest[i] = ins[i+1].Rd
				consumed[i+1] = true
			}
		case r.Op == backend.MFLO:
			// Never emitted detached from its MULT/DIV; a stray one means
			// the emitter's adjacency invariant broke.
			return backend.Encoded{}, errAt(i, "mflo without adjacent mult/div")
		default:
			width[i] = 1
		}
	}

	// Pass B: positions.
	pos := make([]int32, n+1)
	var p int32
	for i := 0; i < n; i++ {
		pos[i] = p
		p += int32(width[i])
	}
	pos[n] = p

	wordPos := func(l backend.Label) (int32, error) {
		idx, err := labelAt(l)
		if err != nil {
			return 0, err
		}
		return pos[idx], nil
	}

	// Pass C: emission.
	code := make([]uint32, 0, p)
	for i := range ins {
		if width[i] == 0 {
			continue
		}
		r := &ins[i]
		w, err := b.lowerOne(r, pos[i], base, fuseDest[i], wordPos)
		if err != nil {
			return backend.Encoded{}, errAt(i, "%s", err)
		}
		code = append(code, w...)
		if len(w) != int(width[i]) {
			return backend.Encoded{}, errAt(i, "width drift: planned %d emitted %d",
				width[i], len(w))
		}
	}
	return backend.Encoded{Code: code, Pos: pos}, nil
}

// branchFor maps a virtual compare-and-branch to the ob0 flag branch that
// tests the same relation after cmp rs, rt (rt = $z for the zero forms).
var branchFor = map[backend.Op]Op{
	backend.BEQ:  BEQ,
	backend.BNE:  BNE,
	backend.BLEZ: BLE,
	backend.BGTZ: BGT,
	backend.BLTZ: BLT,
	backend.BGEZ: BGE,
}

func (b *B) lowerOne(r *backend.Inst, at int32, base uint32, fuse uint8,
	wordPos func(backend.Label) (int32, error)) ([]uint32, error) {
	one := func(w uint32) ([]uint32, error) { return []uint32{w}, nil }
	if r.IsWord {
		if r.JLbl != backend.NoLabel {
			p, err := wordPos(r.JLbl)
			if err != nil {
				return nil, err
			}
			return one((base + uint32(p)) << 2) // absolute RISC byte address
		}
		return one(uint32(r.Imm))
	}
	if r.HasLA {
		p, err := wordPos(r.LALbl)
		if err != nil {
			return nil, err
		}
		v := uint32(millicode.CodeWindow) + ((base + uint32(p)) << 2)
		if r.LAHi {
			return one(EncI(MVHI, r.Rt, 0, int32(v>>16)))
		}
		return one(EncI(IORI, r.Rt, r.Rs, int32(v&0xFFFF)))
	}
	switch r.Op {
	case backend.SLL:
		return one(EncI(LSLI, r.Rd, r.Rt, int32(r.Shamt)))
	case backend.SRL:
		return one(EncI(LSRI, r.Rd, r.Rt, int32(r.Shamt)))
	case backend.SRA:
		return one(EncI(ASRI, r.Rd, r.Rt, int32(r.Shamt)))
	case backend.SLLV:
		// Virtual convention: Rt holds the value, Rs the amount.
		return one(EncR(LSL, r.Rd, r.Rt, r.Rs))
	case backend.SRLV:
		return one(EncR(LSR, r.Rd, r.Rt, r.Rs))
	case backend.SRAV:
		return one(EncR(ASR, r.Rd, r.Rt, r.Rs))
	case backend.ADD:
		return one(EncR(ADDT, r.Rd, r.Rs, r.Rt))
	case backend.ADDU:
		return one(EncR(ADD, r.Rd, r.Rs, r.Rt))
	case backend.SUB:
		return one(EncR(SUBT, r.Rd, r.Rs, r.Rt))
	case backend.SUBU:
		return one(EncR(SUB, r.Rd, r.Rs, r.Rt))
	case backend.AND:
		return one(EncR(AND, r.Rd, r.Rs, r.Rt))
	case backend.OR:
		return one(EncR(IOR, r.Rd, r.Rs, r.Rt))
	case backend.XOR:
		return one(EncR(XOR, r.Rd, r.Rs, r.Rt))
	case backend.NOR:
		return one(EncR(NOR, r.Rd, r.Rs, r.Rt))
	case backend.SLT:
		return one(EncR(SLT, r.Rd, r.Rs, r.Rt))
	case backend.SLTU:
		return one(EncR(SLTU, r.Rd, r.Rs, r.Rt))
	case backend.ADDI:
		return one(EncI(ADTI, r.Rt, r.Rs, r.Imm))
	case backend.ADDIU:
		return one(EncI(ADDI, r.Rt, r.Rs, r.Imm))
	case backend.SLTI:
		return one(EncI(SLTI, r.Rt, r.Rs, r.Imm))
	case backend.SLTIU:
		return one(EncI(SLTIU, r.Rt, r.Rs, r.Imm))
	case backend.ANDI:
		return one(EncI(ANDI, r.Rt, r.Rs, r.Imm))
	case backend.ORI:
		return one(EncI(IORI, r.Rt, r.Rs, r.Imm))
	case backend.XORI:
		return one(EncI(XORI, r.Rt, r.Rs, r.Imm))
	case backend.LUI:
		return one(EncI(MVHI, r.Rt, 0, r.Imm))
	case backend.LB:
		return one(EncM(LDB, r.Rt, r.Rs, r.Imm))
	case backend.LBU:
		return one(EncM(LDBU, r.Rt, r.Rs, r.Imm))
	case backend.LH:
		return one(EncM(LDH, r.Rt, r.Rs, r.Imm))
	case backend.LHU:
		return one(EncM(LDHU, r.Rt, r.Rs, r.Imm))
	case backend.LW:
		return one(EncM(LDW, r.Rt, r.Rs, r.Imm))
	case backend.SB:
		return one(EncM(STB, r.Rt, r.Rs, r.Imm))
	case backend.SH:
		return one(EncM(STH, r.Rt, r.Rs, r.Imm))
	case backend.SW:
		return one(EncM(STW, r.Rt, r.Rs, r.Imm))
	case backend.BEQ, backend.BNE, backend.BLEZ, backend.BGTZ,
		backend.BLTZ, backend.BGEZ:
		t, err := wordPos(r.Lbl)
		if err != nil {
			return nil, err
		}
		// The flag branch sits at at+1; its displacement is relative to
		// the word after it.
		disp := t - (at + 2)
		return []uint32{
			EncR(CMP, 0, r.Rs, r.Rt),
			EncBr(branchFor[r.Op], disp),
		}, nil
	case backend.J, backend.JAL:
		op := JA
		if r.Op == backend.JAL {
			op = JLA
		}
		if r.JLbl != backend.NoLabel {
			p, err := wordPos(r.JLbl)
			if err != nil {
				return nil, err
			}
			return one(EncJ(op, base+uint32(p)))
		}
		return one(EncJ(op, r.JTarget))
	case backend.JR:
		return one(EncJR(r.Rs))
	case backend.JALR:
		return one(EncJLR(r.Rd, r.Rs))
	case backend.MULT:
		return one(EncR(MUL, fuse, r.Rs, r.Rt))
	case backend.MULTU:
		return one(EncR(MULU, fuse, r.Rs, r.Rt))
	case backend.DIV:
		return one(EncR(DVQ, fuse, r.Rs, r.Rt))
	case backend.DIVU:
		return one(EncR(DVQU, fuse, r.Rs, r.Rt))
	case backend.MFHI:
		return one(EncR(MVH, r.Rd, 0, 0))
	case backend.BREAK:
		return one(EncBrk(r.Code))
	case backend.SYSCALL:
		return one(EncSvc(r.Code))
	}
	return nil, fmt.Errorf("unencodable op %s", r.Op)
}
