// Package ob0 is the second TNS/R backend: a compact Oberon-0-style RISC.
// Where the default target is a MIPS R3000 (two-operand compare-and-branch,
// branch delay slots, HI/LO multiply results), ob0 is a condition-flag
// machine with no delay slots and a single H special register — different
// enough that any target assumption leaking above the backend seam breaks
// loudly under the cross-backend differential oracle.
//
// The machine: 32 registers (register 0 hardwired to zero, conventions per
// backend.Reg*), three condition flags N/Z/V written only by CMP/CMPI,
// flag-tested conditional branches, absolute 26-bit jumps, register jumps
// through byte addresses (4x the word index, the cross-backend
// convention), and BRK/SVC carrying 20-bit codes under the same host
// protocol as the default target.
//
// Encodings (6-bit major opcode in bits 31..26):
//
//	R-type   op | a[25:21] | b[20:16] | c[15:11] | 0       a := b op c
//	I-type   op | a[25:21] | b[20:16] | imm16              a := b op imm
//	M-type   op | a[25:21] | b[20:16] | off16              mem[b+off] <-> a
//	B-type   op | 0        | disp16                        pc+1+disp
//	J-type   op | target26                                 absolute word
//	K-type   op | code20                                   BRK/SVC
package ob0

import "fmt"

// Op identifies an ob0 operation; the enum value is the 6-bit major
// opcode.
type Op uint8

const (
	INVALID Op = 0x00

	// R-type: a := b op c (CMP writes flags only; MVH reads H).
	ADD  Op = 0x01 // a = b + c
	ADDT Op = 0x02 // a = b + c, trap on signed overflow
	SUB  Op = 0x03 // a = b - c
	SUBT Op = 0x04 // a = b - c, trap on signed overflow
	AND  Op = 0x05
	IOR  Op = 0x06
	XOR  Op = 0x07
	NOR  Op = 0x08
	LSL  Op = 0x09 // a = b << (c & 31)
	LSR  Op = 0x0A // logical right
	ASR  Op = 0x0B // arithmetic right
	SLT  Op = 0x0C // a = (b < c) signed
	SLTU Op = 0x0D // a = (b < c) unsigned
	CMP  Op = 0x0E // flags := b - c (a ignored)
	MUL  Op = 0x0F // a = low32(b*c) signed; H = high32
	MULU Op = 0x10 // unsigned
	DVQ  Op = 0x11 // a = b quo c; H = b rem c (signed)
	DVQU Op = 0x12 // unsigned
	MVH  Op = 0x13 // a = H

	// I-type: a := b op imm (sign- or zero-extended per the operation).
	ADDI  Op = 0x14 // sign
	ADTI  Op = 0x15 // sign, trap on signed overflow
	ANDI  Op = 0x16 // zero
	IORI  Op = 0x17 // zero
	XORI  Op = 0x18 // zero
	SLTI  Op = 0x19 // sign, signed compare
	SLTIU Op = 0x1A // sign-extended immediate, unsigned compare
	LSLI  Op = 0x1B // shamt = imm & 31
	LSRI  Op = 0x1C
	ASRI  Op = 0x1D
	MVHI  Op = 0x1E // a = imm << 16
	CMPI  Op = 0x1F // flags := b - sign(imm)

	// M-type loads and stores (big-endian data memory, as the TNS is).
	LDB  Op = 0x20 // sign-extending byte load
	LDBU Op = 0x21
	LDH  Op = 0x22
	LDHU Op = 0x23
	LDW  Op = 0x24
	STB  Op = 0x25
	STH  Op = 0x26
	STW  Op = 0x27

	// B-type flag branches, pc-relative to the next instruction.
	BEQ Op = 0x28 // Z
	BNE Op = 0x29 // !Z
	BLT Op = 0x2A // N != V
	BGE Op = 0x2B // N == V
	BLE Op = 0x2C // Z or N != V
	BGT Op = 0x2D // !Z and N == V

	// Jumps. Register jump targets are byte addresses (word index * 4).
	JA  Op = 0x2E // absolute 26-bit word index
	JLA Op = 0x2F // JA with R31 := (pc+1)<<2
	JR  Op = 0x30 // to R[b] >> 2
	JLR Op = 0x31 // JR with R[a] := (pc+1)<<2

	// Host protocol.
	BRK Op = 0x32 // stop with a 20-bit code
	SVC Op = 0x33 // host service call with a 20-bit code

	NumOps Op = 0x34
)

var opNames = [NumOps]string{
	INVALID: "invalid",
	ADD:     "add", ADDT: "addt", SUB: "sub", SUBT: "subt", AND: "and",
	IOR: "ior", XOR: "xor", NOR: "nor", LSL: "lsl", LSR: "lsr", ASR: "asr",
	SLT: "slt", SLTU: "sltu", CMP: "cmp", MUL: "mul", MULU: "mulu",
	DVQ: "dvq", DVQU: "dvqu", MVH: "mvh",
	ADDI: "addi", ADTI: "adti", ANDI: "andi", IORI: "iori", XORI: "xori",
	SLTI: "slti", SLTIU: "sltiu", LSLI: "lsli", LSRI: "lsri", ASRI: "asri",
	MVHI: "mvhi", CMPI: "cmpi",
	LDB: "ldb", LDBU: "ldbu", LDH: "ldh", LDHU: "ldhu", LDW: "ldw",
	STB: "stb", STH: "sth", STW: "stw",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLE: "ble", BGT: "bgt",
	JA: "ja", JLA: "jla", JR: "jr", JLR: "jlr", BRK: "brk", SVC: "svc",
}

func (o Op) String() string {
	if o < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsRType reports a three-register (or flag/special) ALU operation.
func (o Op) IsRType() bool { return o >= ADD && o <= MVH }

// IsIType reports an immediate ALU operation.
func (o Op) IsIType() bool { return o >= ADDI && o <= CMPI }

// IsLoad reports whether the operation reads data memory into A.
func (o Op) IsLoad() bool { return o >= LDB && o <= LDW }

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool { return o >= STB && o <= STW }

// IsBranch reports a conditional flag branch.
func (o Op) IsBranch() bool { return o >= BEQ && o <= BGT }

// IsJump reports an unconditional control transfer.
func (o Op) IsJump() bool { return o == JA || o == JLA || o == JR || o == JLR }

// Instr is a decoded ob0 instruction.
type Instr struct {
	Op      Op
	A, B, C uint8
	Imm     int32  // sign- or zero-extended per the operation
	Target  uint32 // JA/JLA word index; BRK/SVC code
}

// Decode unpacks an instruction word. Unknown opcodes and nonzero bits in
// fields an operation does not use decode to Op INVALID, so truncated or
// damaged words can never alias a real instruction.
func Decode(w uint32) Instr {
	op := Op(w >> 26)
	a := uint8(w >> 21 & 31)
	b := uint8(w >> 16 & 31)
	c := uint8(w >> 11 & 31)
	simm := int32(int16(w))
	zimm := int32(w & 0xFFFF)
	switch {
	case op.IsRType():
		if w&0x7FF != 0 {
			return Instr{}
		}
		switch op {
		case MVH:
			if b != 0 || c != 0 {
				return Instr{}
			}
		case CMP:
			if a != 0 {
				return Instr{}
			}
		}
		return Instr{Op: op, A: a, B: b, C: c}
	case op.IsIType():
		in := Instr{Op: op, A: a, B: b}
		switch op {
		case ANDI, IORI, XORI:
			in.Imm = zimm
		case MVHI:
			if b != 0 {
				return Instr{}
			}
			in.Imm = zimm
		case LSLI, LSRI, ASRI:
			if zimm&^31 != 0 {
				return Instr{}
			}
			in.Imm = zimm
		case CMPI:
			if a != 0 {
				return Instr{}
			}
			in.Imm = simm
		default:
			in.Imm = simm
		}
		return in
	case op.IsLoad() || op.IsStore():
		return Instr{Op: op, A: a, B: b, Imm: simm}
	case op.IsBranch():
		if w>>16&0x3FF != 0 {
			return Instr{}
		}
		return Instr{Op: op, Imm: simm}
	case op == JA || op == JLA:
		return Instr{Op: op, Target: w & 0x3FFFFFF}
	case op == JR:
		if w&0x03E0FFFF != 0 {
			return Instr{}
		}
		return Instr{Op: op, B: b}
	case op == JLR:
		if w&0x0000FFFF != 0 || c != 0 {
			return Instr{}
		}
		return Instr{Op: op, A: a, B: b}
	case op == BRK || op == SVC:
		if w>>20&0x3F != 0 {
			return Instr{}
		}
		return Instr{Op: op, Target: w & 0xFFFFF}
	}
	return Instr{}
}

// Encoders; all panic on out-of-range fields, serving the lowerer and the
// assembler.

// EncR encodes a := b op c (use a=0 for CMP, b=c=0 for MVH).
func EncR(op Op, a, b, c uint8) uint32 {
	if !op.IsRType() {
		panic("ob0: EncR bad op " + op.String())
	}
	return uint32(op)<<26 | uint32(a&31)<<21 | uint32(b&31)<<16 | uint32(c&31)<<11
}

// EncI encodes a := b op imm (a=0 for CMPI, b=0 for MVHI).
func EncI(op Op, a, b uint8, imm int32) uint32 {
	if !op.IsIType() {
		panic("ob0: EncI bad op " + op.String())
	}
	switch op {
	case ANDI, IORI, XORI, MVHI:
		if imm < 0 || imm > 0xFFFF {
			panic("ob0: EncI zero-extended immediate out of range")
		}
	case LSLI, LSRI, ASRI:
		if imm < 0 || imm > 31 {
			panic("ob0: EncI shift amount out of range")
		}
	default:
		if imm < -32768 || imm > 32767 {
			panic("ob0: EncI immediate out of range")
		}
	}
	return uint32(op)<<26 | uint32(a&31)<<21 | uint32(b&31)<<16 | uint32(uint16(imm))
}

// EncM encodes a load or store of register a at R[b]+off.
func EncM(op Op, a, b uint8, off int32) uint32 {
	if !op.IsLoad() && !op.IsStore() {
		panic("ob0: EncM bad op " + op.String())
	}
	if off < -32768 || off > 32767 {
		panic("ob0: EncM offset out of range")
	}
	return uint32(op)<<26 | uint32(a&31)<<21 | uint32(b&31)<<16 | uint32(uint16(off))
}

// EncBr encodes a flag branch with a signed word displacement relative to
// the next instruction.
func EncBr(op Op, disp int32) uint32 {
	if !op.IsBranch() {
		panic("ob0: EncBr bad op " + op.String())
	}
	if disp < -32768 || disp > 32767 {
		panic("ob0: branch displacement out of range")
	}
	return uint32(op)<<26 | uint32(uint16(disp))
}

// EncJ encodes JA or JLA to an absolute word index.
func EncJ(op Op, target uint32) uint32 {
	if op != JA && op != JLA {
		panic("ob0: EncJ bad op " + op.String())
	}
	if target > 0x3FFFFFF {
		panic("ob0: jump target out of range")
	}
	return uint32(op)<<26 | target
}

// EncJR encodes a register jump to the byte address in R[b].
func EncJR(b uint8) uint32 { return uint32(JR)<<26 | uint32(b&31)<<16 }

// EncJLR encodes jlr a, b (link in a, target byte address in b).
func EncJLR(a, b uint8) uint32 {
	return uint32(JLR)<<26 | uint32(a&31)<<21 | uint32(b&31)<<16
}

// EncBrk encodes BRK with a 20-bit code.
func EncBrk(code uint32) uint32 { return uint32(BRK)<<26 | code&0xFFFFF }

// EncSvc encodes SVC with a 20-bit code.
func EncSvc(code uint32) uint32 { return uint32(SVC)<<26 | code&0xFFFFF }

// Nop is the canonical ob0 no-op (lsli $0, $0, 0).
var Nop = EncI(LSLI, 0, 0, 0)
