package backend

// Trap codes raised by simulated execution. The numbering is part of the
// cross-backend runtime contract: the mixed-mode driver keys its recovery
// paths off these values.
const (
	TrapNone      = 0
	TrapOverflow  = 1 // trapping add/subtract signed overflow
	TrapAddress   = 2 // unaligned or out-of-range access
	TrapBadInstr  = 3
	TrapDivZero   = 4 // raised by millicode via BREAK, not by divide itself
	TrapProtected = 5 // store into the fenced runtime-table region
)

// CPU is the simulator state shared by every backend: the architectural
// state of the 32-register TNS/R machine plus the host-facing stop,
// breakpoint and observation protocol. A backend's simulator embeds CPU
// and adds its private pipeline state (caches, delay slots, special
// registers); the mixed-mode driver and the debugger operate on CPU alone
// and stay target-independent.
//
// Code is held separately from data memory; PC values are word indexes
// into Code, and register-held code addresses are byte addresses, i.e. 4
// times the word index, on every backend.
type CPU struct {
	Code []uint32
	Mem  []byte
	Reg  [32]uint32
	PC   uint32 // word index of the next instruction to execute

	Cycles int64
	Instrs int64

	// Stopped is set when a BREAK executes or a trap is raised; Run
	// returns to the host, which may adjust state and call Run again.
	Stopped   bool
	BreakCode uint32 // valid when stopped by BREAK
	Trap      int    // valid when stopped by a trap
	TrapPC    uint32

	// Breakpoints stops execution before the instruction at a word index
	// executes (BPHit is set). ResumeAt clears the hit and skips the
	// check for the first instruction so execution can continue.
	Breakpoints map[uint32]bool
	BPHit       bool

	// OnSyscall handles SYSCALL inline; execution continues after it
	// returns. The 20-bit code selects the service; arguments are in
	// registers per the millicode convention.
	OnSyscall func(c *CPU, code uint32)

	// StoreTrace, when non-nil, observes every halfword store into the
	// TNS data region (byte address, halfword value); the fidelity tests
	// compare it with the interpreter's trace.
	StoreTrace func(addr uint32, value uint16)

	// OnInstr, when non-nil, is called with the PC of every counted
	// instruction (after Instrs is incremented, so hook calls equal the
	// Instrs total exactly). Nil costs one comparison per step.
	OnInstr func(pc uint32)

	// ProtectedLo/ProtectedHi, when Hi > Lo, fence [Lo, Hi) of data
	// memory against simulated stores: the host lays the packed
	// PMap/EMap runtime tables there, and damaged translated code must
	// not be able to rewrite the structures the recovery path depends
	// on. A store into the range raises TrapProtected. Host-side writes
	// (WriteWord and friends) bypass the fence.
	ProtectedLo uint32
	ProtectedHi uint32
}

// Core returns the shared state itself; embedding CPU therefore satisfies
// the Sim interface's Core method for every backend simulator.
func (c *CPU) Core() *CPU { return c }

// ReadHalf reads a big-endian halfword from data memory (host convenience).
func (c *CPU) ReadHalf(addr uint32) uint16 {
	return uint16(c.Mem[addr])<<8 | uint16(c.Mem[addr+1])
}

// WriteHalf writes a big-endian halfword to data memory (host convenience).
func (c *CPU) WriteHalf(addr uint32, v uint16) {
	c.Mem[addr] = byte(v >> 8)
	c.Mem[addr+1] = byte(v)
}

// WriteWord writes a big-endian word to data memory (host convenience).
func (c *CPU) WriteWord(addr uint32, v uint32) {
	c.Mem[addr] = byte(v >> 24)
	c.Mem[addr+1] = byte(v >> 16)
	c.Mem[addr+2] = byte(v >> 8)
	c.Mem[addr+3] = byte(v)
}
