package backend

import "fmt"

// Dedicated register numbers of the TNS/R emulation scheme, fixed across
// backends (per the paper: eight dedicated registers hold the TNS register
// stack, seven hold special TNS state, fourteen are translator
// temporaries). Every backend is a 32-register machine with register 0
// hardwired to zero, so the convention carries over unchanged:
//
//	$0          $z     always zero
//	$1..$8      $r0..$r7   the emulated TNS register barrel
//	$9          $db    data base: byte address of TNS data word 0
//	$10         $l     TNS L register as a byte offset (L*2)
//	$11         $s     TNS S register as a byte offset (S*2)
//	$12         $cc    condition code as a signed value (<0, 0, >0)
//	$13         $k     carry flag (0/1)
//	$14         $v     overflow flag (0/1)
//	$15         $env   packed ENV: RP in bits 0..2, T in bit 7, space bit 8
//	$16..$29    $t0..$t13  Accelerator temporaries
//	$30         $mt    millicode linkage temporary
//	$31         $ra    return address (linking jumps)
const (
	RegZero = 0
	RegR0   = 1 // TNS R0; TNS Rn is RegR0+n
	RegDB   = 9
	RegL    = 10
	RegS    = 11
	RegCC   = 12
	RegK    = 13
	RegV    = 14
	RegENV  = 15
	RegT0   = 16 // first of 14 temporaries
	NumTemp = 14
	RegMT   = 30
	RegRA   = 31
)

// RegName returns the assembler name of a register under the shared
// dedicated-register convention; backends use it in their assemblers and
// disassemblers so listings read the same on every target.
func RegName(r uint8) string {
	switch {
	case r == RegZero:
		return "$z"
	case r >= RegR0 && r < RegR0+8:
		return fmt.Sprintf("$r%d", r-RegR0)
	case r == RegDB:
		return "$db"
	case r == RegL:
		return "$l"
	case r == RegS:
		return "$s"
	case r == RegCC:
		return "$cc"
	case r == RegK:
		return "$k"
	case r == RegV:
		return "$v"
	case r == RegENV:
		return "$env"
	case r >= RegT0 && r < RegT0+NumTemp:
		return fmt.Sprintf("$t%d", r-RegT0)
	case r == RegMT:
		return "$mt"
	case r == RegRA:
		return "$ra"
	}
	return fmt.Sprintf("$%d", r)
}
