// Package backend defines the seam between the Accelerator's
// target-independent analysis core (RP tracking, liveness, PMap/EMap
// construction, FallbackWhy accounting) and a concrete RISC target. The
// translator emits a stream of virtual instructions ([Inst]) in the
// register convention of the TNS/R emulation scheme; a [Backend] turns that
// stream into target machine words, supplies the millicode implementation
// of the runtime routines, and constructs a simulator for mixed-mode
// execution.
//
// What is fixed across backends — the TNS/R runtime contract — lives in
// the millicode package: the data/code memory layout, the BREAK/SYSCALL
// protocol, the packed PMap/EMap table formats, and the millicode entry
// label names. What varies per backend is only the instruction encoding,
// the pipeline shape (delay slots or not), and the millicode routine
// bodies. Register-held code addresses are byte addresses (4x the word
// index) on every backend, so the runtime tables are target-independent.
package backend

import (
	"fmt"
	"sort"
)

// Traits describes target pipeline properties the target-independent
// pipeline must respect.
type Traits struct {
	// DelaySlots reports that every branch and jump executes the
	// following instruction before transferring control. When set, the
	// core runs its delay-slot scheduler over the virtual stream; when
	// clear, the raw stream's explicit slot nops are dropped by the
	// encoder instead.
	DelaySlots bool
}

// Encoded is the result of encoding a virtual instruction stream.
type Encoded struct {
	// Code holds the target machine words.
	Code []uint32
	// Pos maps each virtual instruction index to the word index of its
	// first target word; len(Pos) == len(ins)+1 and Pos[len(ins)] ==
	// len(Code), so Pos is also usable for labels bound at stream end.
	// Pos is non-decreasing (an instruction may encode to zero words).
	Pos []int32
}

// Sim is the minimal simulator surface mixed-mode execution needs. The
// shared architectural and protocol state lives in [CPU]; a backend's
// simulator embeds CPU (gaining Core for free) and adds its private
// pipeline state.
type Sim interface {
	// Core returns the shared simulator state.
	Core() *CPU
	// ResumeAt clears the stop condition and continues execution at the
	// given code word index on the next Run.
	ResumeAt(pc uint32)
	// Run executes until a BREAK, a trap, or the instruction budget is
	// exhausted (0 means unlimited); it errors only on budget overrun.
	Run(maxInstrs int64) error
}

// Backend is one RISC target.
type Backend interface {
	// ID is the target's stable identity byte, stored in the codefile
	// acceleration section so a runner never drives translated code with
	// the wrong simulator.
	ID() uint8
	// Name is the target's stable human-readable name (CLI flags,
	// TransKey).
	Name() string
	// Traits reports the target pipeline properties.
	Traits() Traits
	// Millicode returns the target's assembled millicode image (loaded
	// at code word 0) and its entry labels, keyed by the millicode.L*
	// names. Implementations return private copies.
	Millicode() (code []uint32, labels map[string]uint32)
	// Encode lowers a virtual instruction stream to target words. base
	// is the code-space word index the stream will be loaded at; labelAt
	// resolves a label to the virtual instruction index it is bound to
	// (which may equal len(ins) for end-of-stream labels).
	Encode(ins []Inst, labelAt func(Label) (int32, error), base uint32) (Encoded, error)
	// NewSim constructs a simulator over the given code image with
	// memBytes bytes of data memory.
	NewSim(code []uint32, memBytes int) Sim
	// Disasm renders one target word for listings and debuggers; pc is
	// the word's code index (branch targets print absolutely).
	Disasm(pc, w uint32) string
}

// Registry of available backends, populated by implementation packages at
// init. The zero ID is the MIPS/R3000 default, which is also what
// acceleration sections written before the backend tag existed decode as.
var (
	byID   = map[uint8]Backend{}
	byName = map[string]Backend{}
)

// Register adds a backend to the registry; it panics on a duplicate ID or
// name, which would make codefile tags ambiguous.
func Register(b Backend) {
	if _, dup := byID[b.ID()]; dup {
		panic(fmt.Sprintf("backend: duplicate ID %d", b.ID()))
	}
	if _, dup := byName[b.Name()]; dup {
		panic("backend: duplicate name " + b.Name())
	}
	byID[b.ID()] = b
	byName[b.Name()] = b
}

// ByID looks a backend up by its codefile identity byte.
func ByID(id uint8) (Backend, bool) {
	b, ok := byID[id]
	return b, ok
}

// ByName looks a backend up by its CLI/TransKey name.
func ByName(name string) (Backend, bool) {
	b, ok := byName[name]
	return b, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
