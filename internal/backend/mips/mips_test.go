package mips_test

import (
	"testing"

	"tnsr/internal/backend/backendtest"
	"tnsr/internal/backend/mips"
	"tnsr/internal/risc"
)

// TestConformance holds the default MIPS target to the backend contract.
// The def/use adapter feeds the conformance kit's metadata-vs-simulator
// property test; control flow and the host protocol are outside the
// single-word property and are skipped.
func TestConformance(t *testing.T) {
	backendtest.Contract(t, mips.Default, func(w uint32) (int, []uint8, bool) {
		in := risc.Decode(w)
		switch in.Op {
		case risc.INVALID, risc.BEQ, risc.BNE, risc.BLEZ, risc.BGTZ,
			risc.BLTZ, risc.BGEZ, risc.J, risc.JAL, risc.JR, risc.JALR,
			risc.BREAK, risc.SYSCALL:
			return 0, nil, false
		}
		return in.Def(), in.Uses(nil), true
	})
}
