// Package mips is the default TNS/R backend: the MIPS-R3000-like target of
// Andrews & Sand 1992, wrapping the risc encoder/simulator and the
// millicode package's hand-coded routines. The virtual instruction stream
// is MIPS-shaped by construction, so encoding is 1:1 — every virtual
// instruction becomes exactly one machine word and instruction indexes are
// word indexes — which is what keeps this backend byte-identical to the
// pre-seam translator (see TestMIPSBackendByteStable).
package mips

import (
	"fmt"

	"tnsr/internal/backend"
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
)

// BackendID is the codefile identity byte of the MIPS target. Zero, so
// acceleration sections written before the backend tag existed read as
// MIPS — which is what they are.
const BackendID uint8 = 0

// B implements backend.Backend for the R3000. Cfg holds the simulator's
// timing model; it never affects encoding.
type B struct {
	Cfg risc.Config
}

// New returns a MIPS backend whose simulators use the given timing config.
func New(cfg risc.Config) *B { return &B{Cfg: cfg} }

// Default is the registry instance, with the Cyclone/R timing model.
var Default = New(risc.DefaultConfig())

func init() { backend.Register(Default) }

func (b *B) ID() uint8                  { return BackendID }
func (b *B) Name() string               { return "mips" }
func (b *B) Traits() backend.Traits     { return backend.Traits{DelaySlots: true} }
func (b *B) Disasm(pc, w uint32) string { return risc.Disassemble(pc, w) }

// Millicode returns the assembled MIPS millicode and its entry labels.
func (b *B) Millicode() (code []uint32, labels map[string]uint32) {
	return millicode.Build()
}

// NewSim constructs an R3000 simulator with this backend's timing config.
func (b *B) NewSim(code []uint32, memBytes int) backend.Sim {
	return risc.NewSim(code, memBytes, b.Cfg)
}

// Encode lowers the virtual stream 1:1 into MIPS words.
func (b *B) Encode(ins []backend.Inst, labelAt func(backend.Label) (int32, error),
	base uint32) (backend.Encoded, error) {
	// Identity layout: instruction index == word index, so a label's word
	// position is its instruction index.
	pos := func(l backend.Label) (uint32, error) {
		p, err := labelAt(l)
		if err != nil {
			return 0, err
		}
		return uint32(p), nil
	}
	code := make([]uint32, len(ins))
	posMap := make([]int32, len(ins)+1)
	for i, r := range ins {
		w, err := encodeOne(r, uint32(i), base, pos)
		if err != nil {
			return backend.Encoded{}, fmt.Errorf("mips: at RISC %d (tns %d): %w", i, r.TNSAddr, err)
		}
		code[i] = w
		posMap[i] = int32(i)
	}
	posMap[len(ins)] = int32(len(ins))
	return backend.Encoded{Code: code, Pos: posMap}, nil
}

func encodeOne(r backend.Inst, idx, base uint32,
	pos func(backend.Label) (uint32, error)) (uint32, error) {
	if r.IsWord {
		if r.JLbl != backend.NoLabel {
			p, err := pos(r.JLbl)
			if err != nil {
				return 0, err
			}
			return (base + p) << 2, nil // absolute RISC byte address
		}
		return uint32(r.Imm), nil
	}
	if r.HasLA {
		p, err := pos(r.LALbl)
		if err != nil {
			return 0, err
		}
		v := uint32(millicode.CodeWindow) + ((base + p) << 2)
		if r.LAHi {
			return risc.EncImm(risc.LUI, r.Rt, 0, int32(v>>16)), nil
		}
		return risc.EncImm(risc.ORI, r.Rt, r.Rs, int32(v&0xFFFF)), nil
	}
	switch r.Op {
	case risc.SLL, risc.SRL, risc.SRA:
		return risc.EncShift(r.Op, r.Rd, r.Rt, r.Shamt), nil
	case risc.SLLV, risc.SRLV, risc.SRAV:
		// Encoded as rd, value(rt), amount(rs).
		return risc.EncALU(r.Op, r.Rd, r.Rs, r.Rt), nil
	case risc.ADD, risc.ADDU, risc.SUB, risc.SUBU, risc.AND, risc.OR,
		risc.XOR, risc.NOR, risc.SLT, risc.SLTU:
		return risc.EncALU(r.Op, r.Rd, r.Rs, r.Rt), nil
	case risc.ADDI, risc.ADDIU, risc.SLTI, risc.SLTIU, risc.ANDI,
		risc.ORI, risc.XORI, risc.LUI:
		return risc.EncImm(r.Op, r.Rt, r.Rs, r.Imm), nil
	case risc.LB, risc.LH, risc.LW, risc.LBU, risc.LHU, risc.SB, risc.SH,
		risc.SW:
		return risc.EncMem(r.Op, r.Rt, r.Rs, r.Imm), nil
	case risc.BEQ, risc.BNE, risc.BLEZ, risc.BGTZ, risc.BLTZ, risc.BGEZ:
		p, err := pos(r.Lbl)
		if err != nil {
			return 0, err
		}
		disp := int32(p) - int32(idx) - 1
		return risc.EncBranch(r.Op, r.Rs, r.Rt, disp), nil
	case risc.J, risc.JAL:
		if r.JLbl != backend.NoLabel {
			p, err := pos(r.JLbl)
			if err != nil {
				return 0, err
			}
			return risc.EncJ(r.Op, base+p), nil
		}
		return risc.EncJ(r.Op, r.JTarget), nil
	case risc.JR:
		return risc.EncJR(r.Rs), nil
	case risc.JALR:
		return risc.EncJALR(r.Rd, r.Rs), nil
	case risc.MULT, risc.MULTU, risc.DIV, risc.DIVU:
		return risc.EncMulDiv(r.Op, r.Rs, r.Rt), nil
	case risc.MFHI, risc.MFLO:
		return risc.EncMulDiv(r.Op, r.Rd, 0), nil
	case risc.BREAK:
		return risc.EncBreak(r.Code), nil
	case risc.SYSCALL:
		return risc.EncSyscall(r.Code), nil
	}
	return 0, fmt.Errorf("unencodable op %s", r.Op)
}
