package backend

import "fmt"

// Op identifies one virtual instruction operation. The set (and the
// mnemonics) are those of the MIPS-I subset the original TNS/R Accelerator
// generated — the virtual stream is deliberately shaped like the paper's
// target so the default backend encodes it 1:1 — but every operation has
// well-defined target-independent semantics that a non-MIPS backend lowers
// to its own encoding (possibly several words, or zero for elided delay-slot
// nops).
type Op uint8

// The operation set. Names match MIPS mnemonics.
const (
	INVALID Op = iota
	SLL
	SRL
	SRA
	SLLV
	SRLV
	SRAV
	JR
	JALR
	SYSCALL
	BREAK
	MFHI
	MFLO
	MULT
	MULTU
	DIV
	DIVU
	ADD
	ADDU
	SUB
	SUBU
	AND
	OR
	XOR
	NOR
	SLT
	SLTU
	J
	JAL
	BEQ
	BNE
	BLEZ
	BGTZ
	BLTZ
	BGEZ
	ADDI
	ADDIU
	SLTI
	SLTIU
	ANDI
	ORI
	XORI
	LUI
	LB
	LH
	LW
	LBU
	LHU
	SB
	SH
	SW
	NumOps
)

var opNames = [NumOps]string{
	INVALID: "invalid",
	SLL:     "sll", SRL: "srl", SRA: "sra", SLLV: "sllv", SRLV: "srlv",
	SRAV: "srav", JR: "jr", JALR: "jalr", SYSCALL: "syscall",
	BREAK: "break", MFHI: "mfhi", MFLO: "mflo", MULT: "mult",
	MULTU: "multu", DIV: "div", DIVU: "divu", ADD: "add", ADDU: "addu",
	SUB: "sub", SUBU: "subu", AND: "and", OR: "or", XOR: "xor", NOR: "nor",
	SLT: "slt", SLTU: "sltu", J: "j", JAL: "jal", BEQ: "beq", BNE: "bne",
	BLEZ: "blez", BGTZ: "bgtz", BLTZ: "bltz", BGEZ: "bgez", ADDI: "addi",
	ADDIU: "addiu", SLTI: "slti", SLTIU: "sltiu", ANDI: "andi", ORI: "ori",
	XORI: "xori", LUI: "lui", LB: "lb", LH: "lh", LW: "lw", LBU: "lbu",
	LHU: "lhu", SB: "sb", SH: "sh", SW: "sw",
}

func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsLoad reports whether the operation reads data memory into Rt.
func (o Op) IsLoad() bool { return o == LB || o == LH || o == LW || o == LBU || o == LHU }

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool { return o == SB || o == SH || o == SW }

// IsBranch reports whether the operation is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ:
		return true
	}
	return false
}

// IsJump reports whether the operation is an unconditional control
// transfer.
func (o Op) IsJump() bool {
	switch o {
	case J, JAL, JR, JALR:
		return true
	}
	return false
}

// HasDelaySlot reports whether the instruction is followed by a delay slot
// in the virtual stream. The raw emitter always places an explicit nop in
// the slot; only the delay-slot scheduler (run when the target's Traits
// say so) ever replaces it with useful work.
func (o Op) HasDelaySlot() bool { return o.IsBranch() || o.IsJump() }
