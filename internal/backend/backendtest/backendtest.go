// Package backendtest exports the backend.Backend conformance contract,
// mirroring storetest: every target implementation — mips, ob0, and any
// future one — proves the same seam guarantees by calling Contract from
// its own package test:
//
//   - Registry identity: ByID/ByName resolve back to the instance, and
//     Millicode returns private copies with every runtime entry label.
//   - Encoding is deterministic and its Pos map is well-formed (length
//     len(ins)+1, non-decreasing, ending at len(Code)).
//   - A virtual-stream fragment covering the delicate lowering cases —
//     MULT/DIV + MFLO/MFHI adjacency, LA pairs and table words read back
//     through the code window, JR dispatch, JAL linkage, delay-slot nops,
//     loops — executes to the architecturally-defined result on the
//     backend's own simulator, with the BREAK, SYSCALL, StoreTrace,
//     breakpoint, trap and register-zero protocols all observed.
//   - Def/use metadata agrees with the simulator: an instruction changes
//     no general register outside its def, and its effect is invariant
//     under perturbation of registers outside its use set.
//   - Translation is worker-count invariant: accelerating the same
//     program with 1 and 8 workers yields identical target bytes.
package backendtest

import (
	"math/rand"
	"reflect"
	"testing"

	"tnsr/internal/backend"
	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/workloads"
)

// DefUse reports the general-register def (-1 for none) and use set of
// one target word, or ok=false for words the def/use property test should
// skip (invalid encodings, control flow, host protocol).
type DefUse func(w uint32) (def int, uses []uint8, ok bool)

// Contract runs the full backend contract. defuse may be nil if the
// target does not expose def/use metadata.
func Contract(t *testing.T, be backend.Backend, defuse DefUse) {
	t.Run("registry", func(t *testing.T) { testRegistry(t, be) })
	t.Run("millicode", func(t *testing.T) { testMillicode(t, be) })
	t.Run("encode", func(t *testing.T) { testEncode(t, be) })
	t.Run("exec", func(t *testing.T) { testExec(t, be) })
	t.Run("breakpoints", func(t *testing.T) { testBreakpoints(t, be) })
	t.Run("traps", func(t *testing.T) { testTraps(t, be) })
	if defuse != nil {
		t.Run("defuse-vs-sim", func(t *testing.T) { testDefUseVsSim(t, be, defuse) })
	}
	t.Run("worker-determinism", func(t *testing.T) { testWorkerDeterminism(t, be) })
}

func testRegistry(t *testing.T, be backend.Backend) {
	if got, ok := backend.ByID(be.ID()); !ok || got != be {
		t.Errorf("ByID(%d) = %v, %v; want the instance itself", be.ID(), got, ok)
	}
	if got, ok := backend.ByName(be.Name()); !ok || got != be {
		t.Errorf("ByName(%q) = %v, %v; want the instance itself", be.Name(), got, ok)
	}
	found := false
	for _, n := range backend.Names() {
		if n == be.Name() {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v does not list %q", backend.Names(), be.Name())
	}
}

func testMillicode(t *testing.T, be backend.Backend) {
	code, labels := be.Millicode()
	if len(code) == 0 {
		t.Fatal("empty millicode image")
	}
	for _, l := range []string{
		millicode.LExit, millicode.LXcal, millicode.LScal,
		millicode.LMovb, millicode.LMovw, millicode.LCmpb, millicode.LScnb,
	} {
		at, ok := labels[l]
		if !ok {
			t.Errorf("millicode label %s missing", l)
			continue
		}
		if int(at) >= len(code) {
			t.Errorf("millicode label %s = %d beyond code (%d words)", l, at, len(code))
		}
	}
	// The image must fit below the user code base: it shares the code
	// space with translated sections.
	if len(code) > millicode.UserCodeBase {
		t.Errorf("millicode is %d words, overlaps user code base %#x",
			len(code), millicode.UserCodeBase)
	}
	// Private copies: a caller mutating its result must not poison the
	// next caller's.
	code[0] = ^code[0]
	for k := range labels {
		labels[k] = 0xDEAD
		break
	}
	code2, labels2 := be.Millicode()
	if code2[0] == code[0] {
		t.Error("Millicode code slice is shared between callers")
	}
	for k, v := range labels2 {
		if v == 0xDEAD && labels[k] == 0xDEAD {
			t.Error("Millicode label map is shared between callers")
			break
		}
	}
	// Every millicode word must disassemble to something.
	for i, w := range code2 {
		if s := be.Disasm(uint32(i), w); s == "" {
			t.Fatalf("Disasm(%d, %#x) is empty", i, w)
		}
	}
}

// prog builds a virtual instruction stream by hand, with the same
// invariants the core emitter maintains (explicit slot nops after control
// transfers, MFLO adjacent to its MULT/DIV).
type prog struct {
	ins    []backend.Inst
	labels map[backend.Label]int32
	next   backend.Label
}

func newProg() *prog { return &prog{labels: map[backend.Label]int32{}} }

func (p *prog) label() backend.Label { p.next++; return p.next }

func (p *prog) bind(l backend.Label) { p.labels[l] = int32(len(p.ins)) }

func (p *prog) add(i backend.Inst) int { p.ins = append(p.ins, i); return len(p.ins) - 1 }

func (p *prog) nop() { p.add(backend.Inst{Op: backend.SLL}) }

func (p *prog) labelAt(l backend.Label) (int32, error) {
	v, ok := p.labels[l]
	if !ok {
		return 0, errUnbound(l)
	}
	return v, nil
}

type errUnbound backend.Label

func (e errUnbound) Error() string { return "unbound label" }

func (p *prog) encode(t *testing.T, be backend.Backend) backend.Encoded {
	t.Helper()
	enc, err := be.Encode(p.ins, p.labelAt, 0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(enc.Pos) != len(p.ins)+1 {
		t.Fatalf("len(Pos) = %d, want %d", len(enc.Pos), len(p.ins)+1)
	}
	for i := 1; i < len(enc.Pos); i++ {
		if enc.Pos[i] < enc.Pos[i-1] {
			t.Fatalf("Pos not non-decreasing at %d: %v", i, enc.Pos[i-1:i+1])
		}
	}
	if int(enc.Pos[len(p.ins)]) != len(enc.Code) {
		t.Fatalf("Pos[end] = %d, want len(Code) = %d", enc.Pos[len(p.ins)], len(enc.Code))
	}
	return enc
}

// execProg is the shared end-to-end fragment; see testExec for the
// expected architectural results.
func execProg() (p *prog, marks map[string]int) {
	p = newProg()
	marks = map[string]int{}
	z := uint8(backend.RegZero)
	tr := func(i int) uint8 { return uint8(backend.RegT0 + i) }
	ori := func(rd, rs uint8, imm int32) backend.Inst {
		return backend.Inst{Op: backend.ORI, Rt: rd, Rs: rs, Imm: imm}
	}

	lTbl, lCont, lFn, lLoop := p.label(), p.label(), p.label(), p.label()

	p.add(ori(tr(0), z, 6))
	p.add(ori(tr(1), z, 7))
	// MULT + adjacent MFLO: the emitter's invariant shape.
	p.add(backend.Inst{Op: backend.MULT, Rs: tr(0), Rt: tr(1)})
	p.add(backend.Inst{Op: backend.MFLO, Rd: tr(2)}) // 42
	p.add(backend.Inst{Op: backend.MULT, Rs: tr(0), Rt: tr(1)})
	p.add(backend.Inst{Op: backend.MFLO, Rd: tr(3)}) // 42
	p.add(backend.Inst{Op: backend.MFHI, Rd: tr(4)}) // 0
	// DIV + MFLO + MFHI: quotient and remainder.
	p.add(backend.Inst{Op: backend.DIV, Rs: tr(2), Rt: tr(0)})
	p.add(backend.Inst{Op: backend.MFLO, Rd: tr(5)}) // 7
	p.add(backend.Inst{Op: backend.MFHI, Rd: tr(6)}) // 0
	// DIV + MFHI only: the remainder-only shape.
	p.add(ori(tr(7), z, 43))
	p.add(backend.Inst{Op: backend.DIV, Rs: tr(7), Rt: tr(0)})
	p.add(backend.Inst{Op: backend.MFHI, Rd: tr(8)}) // 43 % 6 = 1
	// Stores: halfword then byte, both traced.
	marks["sh"] = p.add(backend.Inst{Op: backend.SH, Rt: tr(2), Rs: z, Imm: 0x40})
	p.add(backend.Inst{Op: backend.SB, Rt: tr(1), Rs: z, Imm: 0x43})
	// A write to $z must be discarded.
	p.add(ori(z, z, 5))
	// CASE shape: LA pair -> code-window load of a table word -> JR.
	p.add(backend.Inst{Op: backend.LUI, Rt: tr(9), HasLA: true, LAHi: true, LALbl: lTbl})
	p.add(backend.Inst{Op: backend.ORI, Rt: tr(9), Rs: tr(9), HasLA: true, LALbl: lTbl})
	p.add(backend.Inst{Op: backend.LW, Rt: tr(10), Rs: tr(9), Imm: 0})
	p.add(backend.Inst{Op: backend.JR, Rs: tr(10)})
	p.nop()
	p.bind(lTbl)
	p.add(backend.Inst{IsWord: true, JLbl: lCont})
	p.bind(lCont)
	// Call/return linkage.
	marks["jal"] = p.add(backend.Inst{Op: backend.JAL, JLbl: lFn})
	p.nop()
	p.add(ori(tr(12), z, 9)) // the return lands here
	p.add(backend.Inst{Op: backend.SYSCALL, Code: 5})
	// Count $t1 down to zero.
	p.bind(lLoop)
	p.add(backend.Inst{Op: backend.ADDIU, Rt: tr(1), Rs: tr(1), Imm: -1})
	p.add(backend.Inst{Op: backend.BGTZ, Rs: tr(1), Lbl: lLoop})
	p.nop()
	p.add(backend.Inst{Op: backend.BREAK, Code: 2})
	p.bind(lFn)
	p.add(ori(tr(11), z, 8))
	p.add(backend.Inst{Op: backend.JR, Rs: backend.RegRA})
	p.nop()
	return p, marks
}

func testEncode(t *testing.T, be backend.Backend) {
	p, _ := execProg()
	enc := p.encode(t, be)
	enc2 := p.encode(t, be)
	if !reflect.DeepEqual(enc, enc2) {
		t.Fatal("Encode is not deterministic")
	}
	for i, w := range enc.Code {
		if s := be.Disasm(uint32(i), w); s == "" {
			t.Fatalf("Disasm(%d, %#x) is empty", i, w)
		}
	}
}

func testExec(t *testing.T, be backend.Backend) {
	p, marks := execProg()
	enc := p.encode(t, be)

	sim := be.NewSim(enc.Code, 0x10000)
	s := sim.Core()
	if s == nil {
		t.Fatal("Core() returned nil")
	}
	var traces [][2]uint32
	s.StoreTrace = func(addr uint32, v uint16) {
		traces = append(traces, [2]uint32{addr, uint32(v)})
	}
	var syscalls []uint32
	s.OnSyscall = func(c *backend.CPU, code uint32) {
		if c != s {
			t.Error("OnSyscall got a different CPU")
		}
		syscalls = append(syscalls, code)
	}
	var counted int64
	s.OnInstr = func(pc uint32) { counted++ }

	sim.ResumeAt(0)
	if err := sim.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.Stopped || s.Trap != backend.TrapNone {
		t.Fatalf("stopped=%v trap=%d, want clean BREAK stop", s.Stopped, s.Trap)
	}
	if s.BreakCode != 2 {
		t.Fatalf("BreakCode = %d, want 2", s.BreakCode)
	}
	if counted != s.Instrs {
		t.Errorf("OnInstr calls = %d, Instrs = %d", counted, s.Instrs)
	}
	if s.Cycles < s.Instrs {
		t.Errorf("Cycles = %d < Instrs = %d", s.Cycles, s.Instrs)
	}

	tr := func(i int) uint8 { return uint8(backend.RegT0 + i) }
	wantReg := map[uint8]uint32{
		0:      0, // the $z write was discarded
		tr(0):  6,
		tr(1):  0, // counted down
		tr(2):  42,
		tr(3):  42,
		tr(4):  0,
		tr(5):  7,
		tr(6):  0,
		tr(7):  43,
		tr(8):  1,
		tr(11): 8,
		tr(12): 9,
	}
	for r, want := range wantReg {
		if got := s.Reg[r]; got != want {
			t.Errorf("R[%s] = %d, want %d", backend.RegName(r), got, want)
		}
	}
	// JAL linked past its delay slot: the link must be the byte address
	// of the virtual instruction after the slot nop, wherever this
	// backend placed it.
	wantRA := uint32(enc.Pos[marks["jal"]+2]) << 2
	if got := s.Reg[backend.RegRA]; got != wantRA {
		t.Errorf("R[$ra] = %#x, want %#x", got, wantRA)
	}
	if got := s.ReadHalf(0x40); got != 42 {
		t.Errorf("mem[0x40] = %d, want 42", got)
	}
	if got := s.Mem[0x43]; got != 7 {
		t.Errorf("mem[0x43] = %d, want 7", got)
	}
	wantTraces := [][2]uint32{{0x40, 42}, {0x42, 7}}
	if !reflect.DeepEqual(traces, wantTraces) {
		t.Errorf("store trace = %v, want %v", traces, wantTraces)
	}
	if !reflect.DeepEqual(syscalls, []uint32{5}) {
		t.Errorf("syscalls = %v, want [5]", syscalls)
	}
}

func testBreakpoints(t *testing.T, be backend.Backend) {
	p, marks := execProg()
	enc := p.encode(t, be)
	sim := be.NewSim(enc.Code, 0x10000)
	s := sim.Core()
	bp := uint32(enc.Pos[marks["sh"]])
	s.Breakpoints = map[uint32]bool{bp: true}

	sim.ResumeAt(0)
	if err := sim.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.BPHit || s.PC != bp {
		t.Fatalf("BPHit=%v PC=%d, want stop at breakpoint word %d", s.BPHit, s.PC, bp)
	}
	if s.ReadHalf(0x40) != 0 {
		t.Fatal("breakpoint stopped after the store, not before")
	}
	// Resume: the first instruction must not re-trigger the breakpoint.
	sim.ResumeAt(s.PC)
	if err := sim.Run(100_000); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if s.BPHit || !s.Stopped || s.BreakCode != 2 {
		t.Fatalf("after resume: BPHit=%v BreakCode=%d, want clean finish", s.BPHit, s.BreakCode)
	}
	if got := s.ReadHalf(0x40); got != 42 {
		t.Errorf("mem[0x40] = %d after resume, want 42", got)
	}
}

func testTraps(t *testing.T, be backend.Backend) {
	z := uint8(backend.RegZero)
	t0, t1, t2 := uint8(backend.RegT0), uint8(backend.RegT0+1), uint8(backend.RegT0+2)
	ori := func(rd, rs uint8, imm int32) backend.Inst {
		return backend.Inst{Op: backend.ORI, Rt: rd, Rs: rs, Imm: imm}
	}
	cases := []struct {
		name string
		ins  []backend.Inst
		mark int // index of the trapping instruction
		want int
		prep func(c *backend.CPU)
	}{
		{
			name: "overflow",
			ins: []backend.Inst{
				{Op: backend.LUI, Rt: t0, Imm: 0x7FFF},
				ori(t0, t0, 0xFFFF),
				ori(t1, z, 1),
				{Op: backend.ADD, Rd: t2, Rs: t0, Rt: t1},
				{Op: backend.BREAK, Code: 9},
			},
			mark: 3,
			want: backend.TrapOverflow,
		},
		{
			name: "address",
			ins: []backend.Inst{
				ori(t0, z, 3),
				{Op: backend.LW, Rt: t1, Rs: t0, Imm: 0},
				{Op: backend.BREAK, Code: 9},
			},
			mark: 1,
			want: backend.TrapAddress,
		},
		{
			name: "protected",
			ins: []backend.Inst{
				ori(t0, z, 0x180),
				ori(t1, z, 1),
				{Op: backend.SH, Rt: t1, Rs: t0, Imm: 0},
				{Op: backend.BREAK, Code: 9},
			},
			mark: 2,
			want: backend.TrapProtected,
			prep: func(c *backend.CPU) { c.ProtectedLo, c.ProtectedHi = 0x100, 0x200 },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := newProg()
			p.ins = tc.ins
			enc := p.encode(t, be)
			sim := be.NewSim(enc.Code, 0x10000)
			s := sim.Core()
			if tc.prep != nil {
				tc.prep(s)
			}
			sim.ResumeAt(0)
			if err := sim.Run(1000); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !s.Stopped || s.Trap != tc.want {
				t.Fatalf("trap = %d (stopped=%v), want %d", s.Trap, s.Stopped, tc.want)
			}
			if s.BreakCode != 0 {
				t.Errorf("BreakCode = %d on a trap stop", s.BreakCode)
			}
			if want := uint32(enc.Pos[tc.mark]); s.TrapPC != want {
				t.Errorf("TrapPC = %d, want %d", s.TrapPC, want)
			}
		})
	}
}

// testDefUseVsSim cross-checks the target's def/use metadata against its
// simulator: execute a random valid word twice — the second time with
// every register outside its use set perturbed — and require identical
// effects; and require that no general register outside the def changed.
func testDefUseVsSim(t *testing.T, be backend.Backend, defuse DefUse) {
	rng := rand.New(rand.NewSource(1))
	const memBytes = 0x1000
	tried := 0
	for trial := 0; tried < 2000 && trial < 400000; trial++ {
		w := rng.Uint32()
		def, uses, ok := defuse(w)
		if !ok {
			continue
		}
		tried++
		used := map[uint8]bool{}
		for _, u := range uses {
			used[u] = true
		}

		var init [32]uint32
		for r := 1; r < 32; r++ {
			if rng.Intn(2) == 0 {
				init[r] = uint32(rng.Intn(memBytes - 8)) // often a valid address
			} else {
				init[r] = rng.Uint32()
			}
		}

		run := func(regs [32]uint32) *backend.CPU {
			sim := be.NewSim([]uint32{w}, memBytes)
			c := sim.Core()
			c.Reg = regs
			c.Reg[0] = 0
			sim.ResumeAt(0)
			if err := sim.Run(4); err != nil {
				t.Fatalf("word %#x: %v", w, err)
			}
			return c
		}

		a := run(init)
		perturbed := init
		for r := uint8(1); r < 32; r++ {
			if !used[r] && int(r) != def {
				perturbed[r] += 0x01010101
			}
		}
		b := run(perturbed)

		// No general register outside the def may change.
		for r := 1; r < 32; r++ {
			if r != def && a.Reg[r] != init[r] {
				t.Fatalf("word %#x (%s): register %s changed outside def %d",
					w, be.Disasm(0, w), backend.RegName(uint8(r)), def)
			}
		}
		if a.Reg[0] != 0 || b.Reg[0] != 0 {
			t.Fatalf("word %#x: register 0 not hardwired to zero", w)
		}
		// The effect must be a function of the use set alone.
		if a.Trap != b.Trap {
			t.Fatalf("word %#x (%s): trap %d vs %d under non-use perturbation",
				w, be.Disasm(0, w), a.Trap, b.Trap)
		}
		if def >= 0 && a.Trap == backend.TrapNone && a.Reg[def] != b.Reg[def] {
			t.Fatalf("word %#x (%s): def %s = %#x vs %#x under non-use perturbation",
				w, be.Disasm(0, w), backend.RegName(uint8(def)), a.Reg[def], b.Reg[def])
		}
		for i := range a.Mem {
			if a.Mem[i] != b.Mem[i] {
				t.Fatalf("word %#x (%s): memory differs at %#x under non-use perturbation",
					w, be.Disasm(0, w), i)
			}
		}
	}
	if tried < 100 {
		t.Fatalf("only %d valid words sampled; defuse hook too restrictive", tried)
	}
}

// testWorkerDeterminism accelerates the same program with 1 and 8 workers
// on this backend and requires identical target bytes at every level.
func testWorkerDeterminism(t *testing.T, be backend.Backend) {
	for _, lvl := range []codefile.AccelLevel{
		codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
	} {
		lvl := lvl
		t.Run(lvl.String(), func(t *testing.T) {
			bytesAt := func(workers int) []uint32 {
				w, err := workloads.Build(workloads.Names[0], 1)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.Options{Level: lvl, Workers: workers, Backend: be,
					LibSummaries: w.LibSummaries}
				if err := core.Accelerate(w.User, opts); err != nil {
					t.Fatal(err)
				}
				return w.User.Accel.RISC
			}
			one, many := bytesAt(1), bytesAt(8)
			if !reflect.DeepEqual(one, many) {
				t.Fatalf("%s: Workers=1 and Workers=8 bytes differ (%d vs %d words)",
					be.Name(), len(one), len(many))
			}
		})
	}
}
