package backend

// Label identifies a position in the virtual instruction stream, bound
// during translation and resolved at layout time.
type Label int32

// NoLabel is the unbound label sentinel.
const NoLabel Label = -1

// Inst is one virtual instruction (or raw table word) before layout. The
// operand roles follow the Op's MIPS-shaped definition; a backend's
// encoder owns the mapping to its machine word(s).
type Inst struct {
	Op      Op
	Rd      uint8
	Rs      uint8
	Rt      uint8
	Shamt   uint8
	Imm     int32
	Lbl     Label  // branch target / data-word label reference
	JTarget uint32 // absolute word index for J/JAL (millicode entries)
	JLbl    Label  // J/JAL to a local label (direct PCAL targets)
	Code    uint32 // BREAK/SYSCALL code
	IsWord  bool   // raw data word: Imm literal or (JLbl) code address
	LALbl   Label  // pair loading CodeWindow+4*(CodeBase+pos(LALbl))
	HasLA   bool   // LALbl is valid
	LAHi    bool   // this is the high half of the pair
	TNSAddr uint16 // originating TNS address (stats, debug listings)
	IsExact bool   // scheduling barrier: start of an exact point
}

// IsNop reports whether the instruction is the canonical virtual no-op
// (sll $0,$0,0) — what the raw emitter places in every delay slot.
func (in Inst) IsNop() bool {
	return !in.IsWord && !in.HasLA && in.Op == SLL &&
		in.Rd == 0 && in.Rt == 0 && in.Shamt == 0
}
