package tns

// Instruction metadata used by the interpreter's cost accounting and by the
// Accelerator's analyses: net effect on RP, flag side effects, and the cost
// class used by the CISC machine models.

// CostClass groups instructions by microcode cost for the machine models.
type CostClass uint8

const (
	ClassSimple CostClass = iota // register-stack ALU ops, immediates
	ClassMem                     // direct loads and stores
	ClassMemInd                  // indirect or indexed loads and stores
	ClassMemExt                  // extended (32-bit) addressing
	ClassDouble                  // 32-bit paired-register arithmetic
	ClassMulDiv                  // multiply and divide
	ClassBranch                  // taken or untaken branches, CASE
	ClassCall                    // PCAL, XCAL, SCAL
	ClassExit                    // EXIT
	ClassLong                    // MOVB-class long-running instructions
	ClassSVC                     // kernel traps
	NumCostClasses
)

// Class returns the cost class of an instruction.
func (in Instr) Class() CostClass {
	switch in.Major {
	case MajLoad, MajStor, MajLdb, MajStb:
		if in.Ind || in.Idx {
			return ClassMemInd
		}
		return ClassMem
	case MajLdd, MajStd:
		if in.Ind || in.Idx {
			return ClassMemInd
		}
		return ClassMem
	case MajControl:
		switch in.Ctl {
		case CtlPCAL, CtlSCAL:
			return ClassCall
		case CtlEXIT:
			return ClassExit
		default:
			return ClassBranch
		}
	case MajSpecial:
		switch in.Sub {
		case SubStack:
			switch in.Operand {
			case OpMPY, OpDIV, OpMOD, OpDMPY, OpDDIV:
				return ClassMulDiv
			case OpDADD, OpDSUB, OpDNEG, OpDCMP, OpDTST, OpDDUP, OpDDEL,
				OpCTOD, OpDTOC:
				return ClassDouble
			case OpMOVB, OpMOVW, OpCMPB, OpSCNB:
				return ClassLong
			case OpXCAL:
				return ClassCall
			}
			return ClassSimple
		case SubLDE, SubSTE, SubLDBE, SubSTBE:
			return ClassMemExt
		case SubCASE:
			return ClassBranch
		case SubSVC:
			return ClassSVC
		case SubADM:
			return ClassMemInd
		case SubDSHL, SubDSHRL:
			return ClassDouble
		}
		return ClassSimple
	}
	return ClassSimple
}

// RPUnknown is returned by RPDelta for instructions whose net register-stack
// effect cannot be determined locally (calls, whose delta is the callee's
// result size, and SETRP, which sets RP absolutely).
const RPUnknown = -128

// RPDelta returns the net change to RP caused by the instruction, or
// RPUnknown for calls and SETRP. Memory-format deltas include the index pop.
func (in Instr) RPDelta() int {
	switch in.Major {
	case MajLoad:
		return 1 - idxPop(in)
	case MajStor:
		return -1 - idxPop(in)
	case MajLdb:
		return 1 - idxPop(in)
	case MajStb:
		return -1 - idxPop(in)
	case MajLdd:
		return 2 - idxPop(in)
	case MajStd:
		return -2 - idxPop(in)
	case MajControl:
		switch in.Ctl {
		case CtlBRZ:
			return -1
		case CtlPCAL, CtlSCAL:
			return RPUnknown
		}
		return 0
	case MajSpecial:
		switch in.Sub {
		case SubLDI, SubLGA, SubLLA, SubLDPL, SubLDRA:
			return 1
		case SubSTAR:
			return -1
		case SubSETRP:
			return RPUnknown
		case SubCASE:
			return -1
		case SubLDE:
			return -1 // pop 2-word address, push 1 word
		case SubSTE:
			return -3
		case SubLDBE:
			return -1
		case SubSTBE:
			return -3
		case SubADM:
			return -2
		case SubStack:
			return stackOpDelta(in.Operand)
		case SubSVC:
			switch in.Operand {
			case SvcHalt, SvcPutchar, SvcPutnum:
				return -1
			case SvcPuts:
				return -2
			}
			return 0 // unknown SVC: traps, never falls through
		}
		return 0 // LDHI, ADDI, CMPI, shifts, ANDI, ORI, ADDS, SETT
	}
	return 0
}

func idxPop(in Instr) int {
	if in.Idx {
		return 1
	}
	return 0
}

func stackOpDelta(op uint8) int {
	switch op {
	case OpADD, OpSUB, OpMPY, OpDIV, OpMOD, OpLAND, OpLOR, OpXOR:
		return -1
	case OpCMP, OpUCMP:
		return -2
	case OpDADD, OpDSUB:
		return -2
	case OpDCMP:
		return -4
	case OpDMPY, OpDDIV:
		return -2
	case OpDUP:
		return 1
	case OpDDUP:
		return 2
	case OpDEL:
		return -1
	case OpDDEL:
		return -2
	case OpXCAL:
		return RPUnknown // pops the PLabel, then the callee's result arrives
	case OpMOVB, OpMOVW:
		return -3
	case OpCMPB:
		return -3
	case OpSCNB:
		return -2 // pops 3, pushes position
	case OpCTOD:
		return 1
	case OpDTOC:
		return -1
	}
	// NOP, NEG, NOT, DNEG, DTST, EXCH, SWAB: no net change.
	return 0
}

// Pops returns how many register-stack words the instruction consumes from
// the top before pushing its results (used by random-program generators and
// the compiler's depth tracking).
func (in Instr) Pops() int {
	switch in.Major {
	case MajLoad, MajLdb:
		return idxPop(in)
	case MajStor, MajStb:
		return 1 + idxPop(in)
	case MajLdd:
		return idxPop(in)
	case MajStd:
		return 2 + idxPop(in)
	case MajControl:
		if in.Ctl == CtlBRZ {
			return 1
		}
		return 0
	case MajSpecial:
		switch in.Sub {
		case SubStack:
			return stackOpPops(in.Operand)
		case SubCASE:
			return 1
		case SubLDE, SubLDBE:
			return 2
		case SubSTE, SubSTBE:
			return 3
		case SubADM:
			return 2
		case SubADDI, SubCMPI, SubSHL, SubSHRL, SubSHRA, SubANDI, SubORI,
			SubLDHI:
			return 1 // operate on the top in place
		case SubDSHL, SubDSHRL:
			return 2
		case SubSVC:
			switch in.Operand {
			case SvcHalt, SvcPutchar, SvcPutnum:
				return 1
			case SvcPuts:
				return 2
			}
		}
	}
	return 0
}

func stackOpPops(op uint8) int {
	switch op {
	case OpADD, OpSUB, OpMPY, OpDIV, OpMOD, OpLAND, OpLOR, OpXOR, OpCMP,
		OpUCMP:
		return 2
	case OpNEG, OpNOT, OpSWAB, OpCTOD, OpDEL:
		return 1
	case OpDADD, OpDSUB, OpDCMP, OpDMPY, OpDDIV:
		return 4
	case OpDNEG, OpDTST, OpDDEL, OpDTOC, OpEXCH, OpDUP:
		return 2
	case OpDDUP:
		return 2
	case OpXCAL:
		return 1
	case OpMOVB, OpMOVW, OpCMPB, OpSCNB:
		return 3
	}
	return 0
}

// FlagEffect describes which ENV flags an instruction writes.
type FlagEffect struct{ CC, K, V bool }

// Flags returns the instruction's flag side effects. The Accelerator's
// liveness pass uses this to elide dead flag computation, which the paper
// names as the most important single optimization.
func (in Instr) Flags() FlagEffect {
	switch in.Major {
	case MajLoad, MajLdb, MajLdd:
		return FlagEffect{CC: true}
	case MajSpecial:
		switch in.Sub {
		case SubADDI:
			return FlagEffect{CC: true, K: true, V: true}
		case SubCMPI:
			return FlagEffect{CC: true}
		case SubSHL, SubSHRL, SubSHRA, SubANDI, SubORI, SubDSHL, SubDSHRL:
			return FlagEffect{CC: true}
		case SubLDE, SubLDBE:
			return FlagEffect{CC: true}
		case SubADM:
			return FlagEffect{CC: true, K: true, V: true}
		case SubStack:
			switch in.Operand {
			case OpADD, OpSUB, OpDADD, OpDSUB:
				return FlagEffect{CC: true, K: true, V: true}
			case OpMPY, OpDIV, OpNEG, OpDNEG, OpDMPY, OpDDIV, OpDTOC:
				return FlagEffect{CC: true, V: true}
			case OpMOD, OpLAND, OpLOR, OpXOR, OpNOT, OpCMP, OpUCMP, OpDCMP,
				OpDTST, OpSWAB, OpCMPB, OpSCNB:
				return FlagEffect{CC: true}
			}
		}
	}
	return FlagEffect{}
}
