package tns

import (
	"testing"
	"testing/quick"
)

func TestDecodeMemFormat(t *testing.T) {
	cases := []struct {
		w     uint16
		major uint8
		ind   bool
		idx   bool
		mode  uint8
		disp  uint16
	}{
		{EncMem(MajLoad, false, false, ModeG, 5), MajLoad, false, false, ModeG, 5},
		{EncMem(MajStor, true, false, ModeL, 127), MajStor, true, false, ModeL, 127},
		{EncMem(MajLdb, false, true, ModeLN, 3), MajLdb, false, true, ModeLN, 3},
		{EncMem(MajStd, true, true, ModeS, 511), MajStd, true, true, ModeS, 511},
	}
	for _, c := range cases {
		in := Decode(c.w)
		if in.Major != c.major || in.Ind != c.ind || in.Idx != c.idx ||
			in.Mode != c.mode || in.Disp != c.disp {
			t.Errorf("Decode(%04x) = %+v, want %+v", c.w, in, c)
		}
	}
}

func TestMemEncodeRoundTrip(t *testing.T) {
	f := func(major uint8, ind, idx bool, mode uint8, disp uint16) bool {
		maj := MajLoad + major%6
		d := disp & 0x1FF
		w := EncMem(maj, ind, idx, mode&3, d)
		in := Decode(w)
		return in.Major == maj && in.Ind == ind && in.Idx == idx &&
			in.Mode == mode&3 && in.Disp == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchEncodeRoundTrip(t *testing.T) {
	for disp := -512; disp <= 511; disp++ {
		in := Decode(EncBUN(int16(disp)))
		if in.Ctl != CtlBUN || int(in.Target) != disp {
			t.Fatalf("BUN %d decoded to %+v", disp, in)
		}
	}
	for disp := -64; disp <= 63; disp++ {
		for cond := uint8(0); cond < 8; cond++ {
			in := Decode(EncBCC(cond, int16(disp)))
			if in.Ctl != CtlBCC || in.Cond != cond || int(in.Target) != disp {
				t.Fatalf("BCC %d,%d decoded to %+v", cond, disp, in)
			}
		}
	}
	for disp := -256; disp <= 255; disp++ {
		in := Decode(EncBRZ(true, int16(disp)))
		if in.Ctl != CtlBRZ || in.Cond != 1 || int(in.Target) != disp {
			t.Fatalf("BNZ %d decoded to %+v", disp, in)
		}
	}
}

func TestBranchTargetAddr(t *testing.T) {
	in := Decode(EncBUN(-3))
	if got := in.BranchTargetAddr(10); got != 8 {
		t.Errorf("backward target = %d, want 8", got)
	}
	in = Decode(EncBUN(5))
	if got := in.BranchTargetAddr(10); got != 16 {
		t.Errorf("forward target = %d, want 16", got)
	}
}

func TestControlEncodings(t *testing.T) {
	in := Decode(EncPCAL(123))
	if in.Ctl != CtlPCAL || in.Target != 123 {
		t.Errorf("PCAL: %+v", in)
	}
	in = Decode(EncSCAL(7))
	if in.Ctl != CtlSCAL || in.Target != 7 {
		t.Errorf("SCAL: %+v", in)
	}
	in = Decode(EncEXIT(2))
	if in.Ctl != CtlEXIT || in.Target != 2 {
		t.Errorf("EXIT: %+v", in)
	}
}

func TestSpecialEncodings(t *testing.T) {
	in := Decode(EncSpecial(SubLDI, 0xFE))
	if in.Sub != SubLDI || in.Operand != 0xFE {
		t.Errorf("LDI: %+v", in)
	}
	in = Decode(EncStack(OpDADD))
	if in.Sub != SubStack || in.Operand != OpDADD {
		t.Errorf("DADD: %+v", in)
	}
}

func TestRPDeltaConsistentWithPops(t *testing.T) {
	// For every encodable instruction, RPDelta (when known) must equal
	// pushes - pops, and pops must never exceed 8.
	words := allInstructionWords()
	for _, w := range words {
		in := Decode(w)
		d := in.RPDelta()
		p := in.Pops()
		if p < 0 || p > 8 {
			t.Errorf("%s: pops %d out of range", Disassemble(0, w), p)
		}
		if d != RPUnknown && (d < -8 || d > 8) {
			t.Errorf("%s: delta %d out of range", Disassemble(0, w), d)
		}
	}
}

func TestIsPredicates(t *testing.T) {
	if !Decode(EncBUN(0)).IsBranch() {
		t.Error("BUN should be a branch")
	}
	if !Decode(EncBUN(0)).IsUnconditionalFlow() {
		t.Error("BUN is unconditional")
	}
	if Decode(EncBCC(CondL, 0)).IsUnconditionalFlow() {
		t.Error("BL is conditional")
	}
	if !Decode(EncBCC(CondAlways, 0)).IsUnconditionalFlow() {
		t.Error("BA is unconditional")
	}
	if !Decode(EncPCAL(0)).IsCall() || !Decode(EncSCAL(0)).IsCall() ||
		!Decode(EncStack(OpXCAL)).IsCall() {
		t.Error("calls not recognized")
	}
	if Decode(EncStack(OpADD)).IsCall() {
		t.Error("ADD is not a call")
	}
	if !Decode(EncEXIT(0)).IsUnconditionalFlow() {
		t.Error("EXIT never falls through")
	}
	if !Decode(EncSpecial(SubCASE, 0)).IsUnconditionalFlow() {
		t.Error("CASE never falls through")
	}
}

func TestClassCovers(t *testing.T) {
	for _, w := range allInstructionWords() {
		in := Decode(w)
		if c := in.Class(); c >= NumCostClasses {
			t.Errorf("%s: class %d out of range", Disassemble(0, w), c)
		}
	}
	if Decode(EncStack(OpMOVB)).Class() != ClassLong {
		t.Error("MOVB should be ClassLong")
	}
	if Decode(EncStack(OpXCAL)).Class() != ClassCall {
		t.Error("XCAL should be ClassCall")
	}
	if Decode(EncMem(MajLoad, true, false, ModeG, 0)).Class() != ClassMemInd {
		t.Error("indirect LOAD should be ClassMemInd")
	}
}

// allInstructionWords enumerates one instance of every defined instruction.
func allInstructionWords() []uint16 {
	var out []uint16
	for op := uint8(0); op <= OpDTOC; op++ {
		out = append(out, EncStack(op))
	}
	for sub := uint8(SubLDI); sub <= SubSETT; sub++ {
		out = append(out, EncSpecial(sub, 1))
	}
	for maj := uint8(MajLoad); maj <= MajStd; maj++ {
		for mode := uint8(0); mode < 4; mode++ {
			out = append(out, EncMem(maj, false, false, mode, 1))
			out = append(out, EncMem(maj, true, true, mode, 1))
		}
	}
	out = append(out, EncBUN(1), EncBCC(CondE, 1), EncBRZ(false, 1),
		EncPCAL(0), EncSCAL(0), EncEXIT(0))
	return out
}

func TestDisassembleStable(t *testing.T) {
	cases := map[uint16]string{
		EncMem(MajLoad, false, false, ModeG, 12): "LOAD G+12",
		EncMem(MajStor, true, true, ModeL, 3):    "STOR L+3,I,X",
		EncMem(MajLdb, false, true, ModeS, 2):    "LDB S-2,X",
		EncStack(OpDADD):                         "DADD",
		EncSpecial(SubLDI, 0xFB):                 "LDI -5",
		EncSpecial(SubSETRP, 7):                  "SETRP 7",
		EncPCAL(9):                               "PCAL 9",
		EncEXIT(2):                               "EXIT 2",
		EncSpecial(SubADM, 1):                    "ADM ,ATOMIC",
	}
	for w, want := range cases {
		if got := Disassemble(0, w); got != want {
			t.Errorf("Disassemble(%04x) = %q, want %q", w, got, want)
		}
	}
	// Branch targets are printed as absolute addresses.
	if got := Disassemble(100, EncBCC(CondNE, -4)); got != "BNE 97" {
		t.Errorf("BNE disasm = %q", got)
	}
}

// TestDisassembleAllWords: every defined instruction (and arbitrary words)
// disassembles to a non-empty string without panicking.
func TestDisassembleAllWords(t *testing.T) {
	for _, w := range allInstructionWords() {
		if s := Disassemble(5, w); len(s) == 0 {
			t.Errorf("empty disassembly for %04x", w)
		}
	}
	for w := 0; w < 0x10000; w += 37 {
		_ = Disassemble(uint16(w), uint16(w))
	}
	// All SVC forms and all conditions.
	for n := uint8(0); n < 8; n++ {
		if CondName(n) == "" {
			t.Error("empty cond name")
		}
	}
	for op := uint8(0); op < 64; op++ {
		if StackOpName(op) == "" {
			t.Error("empty stack op name")
		}
	}
}
