// Package tns defines the TNS instruction set architecture: a re-creation of
// the 16-bit, stack-oriented CISC machine described in Andrews & Sand,
// "Migrating a CISC Computer Family onto RISC via Object Code Translation"
// (Tandem TR 92.1, ASPLOS-V 1992).
//
// The paper describes the architecture's properties without giving a full
// encoding, so this package defines a concrete instruction set with exactly
// the properties the paper's translator has to fight:
//
//   - Eight 16-bit registers R0..R7 form a register barrel ("register
//     stack"); a 3-bit Register Pointer (RP) selects the current top. Most
//     instructions take implied operands relative to RP, but a few address
//     registers absolutely (LDRA, STAR, SETRP), so a translator must recover
//     the absolute value of RP at every instruction.
//   - ENV flags CC (condition code), K (carry) and V (overflow) are set as
//     side effects of most operations; T enables overflow traps.
//   - A 64K-word data space addressed via G (global, base 0), L (local frame)
//     and S (memory-stack top), with short direct displacements, optional
//     indirection and optional indexing by the popped top register. Byte
//     addresses are 16 bits and cover only the lower 32K words.
//   - Procedure calls (PCAL/XCAL/SCAL) push a three-word stack marker and
//     leave function results on the register stack, so the caller's RP after
//     a call depends on the callee's result size (the paper's "RP puzzle").
//   - CASE jumps through inline tables of code addresses embedded in the
//     instruction stream.
//   - Long-running instructions (MOVB, MOVW, CMPB, SCNB) that a translator
//     maps to millicode.
//
// # Instruction encoding
//
// Every instruction is one 16-bit word (CASE is followed by an inline table).
// Bits 15..13 select a major opcode:
//
//	0  SPECIAL   bits 12..8 = sub-opcode, bits 7..0 = operand byte
//	1  LOAD      memory format (word load, push)
//	2  STOR      memory format (word store, pop)
//	3  LDB       memory format (byte load, push zero-extended)
//	4  STB       memory format (byte store, pop)
//	5  LDD       memory format (doubleword load, push hi then lo)
//	6  STD       memory format (doubleword store, pop lo then hi)
//	7  CONTROL   bits 12..10 = sub-opcode (branches, calls, EXIT)
//
// Memory format (majors 1..6):
//
//	bit 12    I  indirect: the addressed word is itself an address
//	bit 11    X  indexed: pop the top register and add it to the address
//	bits 10..9   mode: 0 = G+d, 1 = L+d, 2 = L-d, 3 = S-d
//	bits 8..0    d, unsigned 9-bit displacement
//
// For word operands the effective address is a word address; indexing adds
// words. For byte operands (LDB/STB) the direct/indirect cell yields a
// 16-bit byte address; indexing adds bytes and the sum is truncated to 16
// bits (the truncation the Accelerator's Fast option omits).
//
// Control format (major 7), bits 12..10:
//
//	0  BUN   bits 9..0 signed word displacement relative to next instruction
//	1  BCC   bits 9..7 condition, bits 6..0 signed displacement
//	2  BRZ   bit 9 = sense (0: branch if zero, 1: if nonzero), bits 8..0
//	         signed displacement; pops the tested value
//	3  PCAL  bits 9..0 = procedure entry point (PEP) index, local codefile
//	4  SCAL  bits 9..0 = PEP index in the system library codefile
//	5  EXIT  bits 9..0 = number of argument words to cut from the stack
//
// SPECIAL sub-opcodes are listed with the Sub* constants below.
package tns

import "fmt"

// Major opcodes (bits 15..13).
const (
	MajSpecial = 0
	MajLoad    = 1
	MajStor    = 2
	MajLdb     = 3
	MajStb     = 4
	MajLdd     = 5
	MajStd     = 6
	MajControl = 7
)

// Addressing modes for memory-format instructions (bits 10..9).
const (
	ModeG  = 0 // G + d (globals; authentic compilers keep d <= 255)
	ModeL  = 1 // L + d (locals; authentic compilers keep d <= 127)
	ModeLN = 2 // L - d (parameters; authentic compilers keep d <= 31)
	ModeS  = 3 // S - d (stack temporaries; authentic compilers keep d <= 63)
)

// Control sub-opcodes (bits 12..10 of major 7).
const (
	CtlBUN  = 0
	CtlBCC  = 1
	CtlBRZ  = 2
	CtlPCAL = 3
	CtlSCAL = 4
	CtlEXIT = 5
)

// BCC condition codes (bits 9..7 of BCC). The CC flag is a three-valued
// comparison result; conditions test it.
const (
	CondNever  = 0 // reserved; never branches
	CondL      = 1 // less
	CondE      = 2 // equal
	CondLE     = 3
	CondG      = 4 // greater
	CondNE     = 5
	CondGE     = 6
	CondAlways = 7 // unconditional (short-range BUN alternative)
)

// SPECIAL sub-opcodes (bits 12..8 of major 0).
const (
	SubStack = 0  // operand byte selects a zero-operand stack operation
	SubLDI   = 1  // push sign-extended imm8
	SubLDHI  = 2  // top = top<<8 | imm8 (builds 16-bit constants)
	SubADDI  = 3  // top += sign-extended imm8; sets CC, K, V
	SubCMPI  = 4  // CC = compare(top, sign-extended imm8); does not pop
	SubLDRA  = 5  // push a copy of R[n] (absolute register number)
	SubSTAR  = 6  // R[n] = pop (absolute register number)
	SubSETRP = 7  // RP = n (absolute); the post-XCAL "expected RP" clue
	SubADDS  = 8  // S += sign-extended imm8 (allocate/free stack space)
	SubSVC   = 9  // kernel trap n (console, halt); see Svc* constants
	SubCASE  = 10 // pop index; inline table of code addresses follows
	SubSHL   = 11 // top <<= n (0..15); sets CC
	SubSHRL  = 12 // top >>= n logical; sets CC
	SubSHRA  = 13 // top >>= n arithmetic; sets CC
	SubANDI  = 14 // top &= zero-extended imm8; sets CC
	SubORI   = 15 // top |= zero-extended imm8; sets CC
	SubLDE   = 16 // pop 32-bit byte address pair, push addressed word
	SubSTE   = 17 // pop address pair, pop value, store word
	SubLDBE  = 18 // extended byte load
	SubSTBE  = 19 // extended byte store
	SubLGA   = 20 // push word address G + imm8
	SubLLA   = 21 // push word address L + sign-extended imm8
	SubDSHL  = 22 // 32-bit pair shift left by n
	SubDSHRL = 23 // 32-bit pair shift right logical by n
	SubADM   = 24 // pop word address, pop value, mem[addr] += value;
	// operand bit 0 marks the occurrence as atomic
	SubLDPL = 25 // push PLabel (PEP index) of local procedure imm8
	SubSETT = 26 // ENV.T = operand bit 0 (enable/disable overflow traps)
)

// Zero-operand stack operations (operand byte of SubStack).
const (
	OpNOP  = 0
	OpADD  = 1  // pop b, pop a, push a+b; sets CC, K, V
	OpSUB  = 2  // pop b, pop a, push a-b; sets CC, K, V
	OpMPY  = 3  // pop b, pop a, push a*b (low word); sets CC, V
	OpDIV  = 4  // pop b, pop a, push a/b; traps on b == 0; sets CC, V
	OpMOD  = 5  // pop b, pop a, push a mod b; traps on b == 0; sets CC
	OpNEG  = 6  // top = -top; sets CC, V
	OpLAND = 7  // bitwise and; sets CC
	OpLOR  = 8  // bitwise or; sets CC
	OpXOR  = 9  // bitwise xor; sets CC
	OpNOT  = 10 // bitwise complement; sets CC
	OpCMP  = 11 // pop b, pop a, CC = compare(a, b) signed
	OpUCMP = 12 // pop b, pop a, CC = compare(a, b) unsigned
	OpDADD = 13 // 32-bit add of top two pairs; sets CC, K, V
	OpDSUB = 14 // 32-bit subtract; sets CC, K, V
	OpDNEG = 15 // negate top pair; sets CC, V
	OpDCMP = 16 // pop two pairs, CC = signed 32-bit compare
	OpDTST = 17 // CC from top pair; no pop
	OpDUP  = 18 // push a copy of the top word
	OpDDUP = 19 // push a copy of the top pair
	OpDEL  = 20 // pop and discard one word
	OpDDEL = 21 // pop and discard a pair
	OpEXCH = 22 // exchange the top two words
	OpXCAL = 23 // pop a PLabel, call through it (puzzle point)
	OpMOVB = 24 // pop count, dst baddr, src baddr; move bytes (long-running)
	OpMOVW = 25 // pop count, dst waddr, src waddr; move words (long-running)
	OpCMPB = 26 // pop count, b baddr, a baddr; CC = byte-string compare
	OpSCNB = 27 // pop limit, test byte, baddr; scan; push position, CC
	OpDMPY = 28 // 32-bit multiply of top two pairs; sets CC, V
	OpDDIV = 29 // 32-bit divide; traps on zero divisor; sets CC, V
	OpSWAB = 30 // swap the bytes of the top word; sets CC
	OpCTOD = 31 // widen: pop word, push it sign-extended to a pair
	OpDTOC = 32 // narrow: pop pair, push low word; sets CC, V on loss
)

// SVC trap numbers (operand byte of SubSVC).
const (
	SvcHalt    = 0 // stop the program; R[RP] is the exit status
	SvcPutchar = 1 // write the low byte of R[RP] to the console; pops
	SvcPutnum  = 2 // write R[RP] as a signed decimal number; pops
	SvcPuts    = 3 // pop count, pop byte address; write bytes to console
)

// Trap codes raised by execution (interpreter and translated code agree).
const (
	TrapNone     = 0
	TrapOverflow = 1 // signed 16/32-bit overflow with ENV.T set
	TrapDivZero  = 2 // divide by zero
	TrapStackOvf = 3 // S or L left the data space
	TrapBadPEP   = 4 // PCAL/XCAL/SCAL index outside the PEP table
	TrapBadSVC   = 5 // unknown SVC number
	TrapBadOp    = 6 // undefined instruction
	TrapAddress  = 7 // extended address outside the data space
)

// RPEmpty is the architectural value of RP when the register stack is
// logically empty. Compilers keep the register stack empty across calls
// (registers are dead across calls, as the paper notes), so RP at procedure
// entry is RPEmpty plus any pending result words.
const RPEmpty = 7

// MarkerWords is the size of the stack marker pushed by PCAL/XCAL/SCAL:
// return P, saved ENV, saved L.
const MarkerWords = 3

// ByteSpaceWords is the number of data words reachable by 16-bit byte
// addresses (the lower half of the 64K-word data space).
const ByteSpaceWords = 32768

// DataWords is the size of the data space in 16-bit words.
const DataWords = 65536

// Instr is one decoded TNS instruction. Word is the raw encoding; the
// remaining fields are unpacked per the format of Major.
type Instr struct {
	Word  uint16
	Major uint8
	// Memory format.
	Ind  bool
	Idx  bool
	Mode uint8
	Disp uint16
	// Special format.
	Sub     uint8
	Operand uint8
	// Control format.
	Ctl    uint8
	Cond   uint8
	Target int16 // signed branch displacement, or PEP index / arg count
}

// Decode unpacks a 16-bit instruction word.
func Decode(w uint16) Instr {
	in := Instr{Word: w, Major: uint8(w >> 13)}
	switch in.Major {
	case MajSpecial:
		in.Sub = uint8((w >> 8) & 0x1F)
		in.Operand = uint8(w & 0xFF)
	case MajControl:
		in.Ctl = uint8((w >> 10) & 0x7)
		switch in.Ctl {
		case CtlBUN:
			in.Target = signExtend(w&0x3FF, 10)
		case CtlBCC:
			in.Cond = uint8((w >> 7) & 0x7)
			in.Target = signExtend(w&0x7F, 7)
		case CtlBRZ:
			in.Cond = uint8((w >> 9) & 0x1)
			in.Target = signExtend(w&0x1FF, 9)
		default: // PCAL, SCAL, EXIT
			in.Target = int16(w & 0x3FF)
		}
	default: // memory format
		in.Ind = w&(1<<12) != 0
		in.Idx = w&(1<<11) != 0
		in.Mode = uint8((w >> 9) & 0x3)
		in.Disp = w & 0x1FF
	}
	return in
}

func signExtend(v uint16, bits uint) int16 {
	shift := 16 - bits
	return int16(v<<shift) >> shift
}

// Encode helpers. Each returns the 16-bit instruction word and panics on
// out-of-range fields; they are builders for compilers and tests, not
// untrusted-input parsers.

// EncMem builds a memory-format instruction.
func EncMem(major uint8, ind, idx bool, mode uint8, disp uint16) uint16 {
	if major < MajLoad || major > MajStd {
		panic(fmt.Sprintf("tns: EncMem major %d", major))
	}
	if disp > 0x1FF {
		panic(fmt.Sprintf("tns: EncMem displacement %d out of range", disp))
	}
	w := uint16(major)<<13 | uint16(mode&3)<<9 | disp
	if ind {
		w |= 1 << 12
	}
	if idx {
		w |= 1 << 11
	}
	return w
}

// EncSpecial builds a SPECIAL-format instruction.
func EncSpecial(sub uint8, operand uint8) uint16 {
	if sub > 0x1F {
		panic(fmt.Sprintf("tns: EncSpecial sub %d out of range", sub))
	}
	return uint16(MajSpecial)<<13 | uint16(sub)<<8 | uint16(operand)
}

// EncStack builds a zero-operand stack operation.
func EncStack(op uint8) uint16 { return EncSpecial(SubStack, op) }

// EncBUN builds an unconditional branch with the given signed displacement
// (relative to the next instruction).
func EncBUN(disp int16) uint16 {
	if disp < -512 || disp > 511 {
		panic(fmt.Sprintf("tns: BUN displacement %d out of range", disp))
	}
	return uint16(MajControl)<<13 | uint16(CtlBUN)<<10 | uint16(disp)&0x3FF
}

// EncBCC builds a conditional branch on CC.
func EncBCC(cond uint8, disp int16) uint16 {
	if disp < -64 || disp > 63 {
		panic(fmt.Sprintf("tns: BCC displacement %d out of range", disp))
	}
	if cond > 7 {
		panic("tns: BCC condition out of range")
	}
	return uint16(MajControl)<<13 | uint16(CtlBCC)<<10 |
		uint16(cond)<<7 | uint16(disp)&0x7F
}

// EncBRZ builds a pop-and-branch-if-zero (nonzero when sense is true).
func EncBRZ(nonzero bool, disp int16) uint16 {
	if disp < -256 || disp > 255 {
		panic(fmt.Sprintf("tns: BRZ displacement %d out of range", disp))
	}
	w := uint16(MajControl)<<13 | uint16(CtlBRZ)<<10 | uint16(disp)&0x1FF
	if nonzero {
		w |= 1 << 9
	}
	return w
}

// EncPCAL, EncSCAL and EncEXIT build call and return instructions.
func EncPCAL(pep uint16) uint16 { return encCtl10(CtlPCAL, pep) }

// EncSCAL builds a call into the system library codefile.
func EncSCAL(pep uint16) uint16 { return encCtl10(CtlSCAL, pep) }

// EncEXIT builds a procedure return cutting back args argument words.
func EncEXIT(args uint16) uint16 { return encCtl10(CtlEXIT, args) }

func encCtl10(ctl uint8, v uint16) uint16 {
	if v > 0x3FF {
		panic(fmt.Sprintf("tns: control operand %d out of range", v))
	}
	return uint16(MajControl)<<13 | uint16(ctl)<<10 | v
}

// BranchTargetAddr returns the branch target for a control-transfer
// instruction located at addr (BUN/BCC/BRZ displacements are relative to
// the next instruction).
func (in Instr) BranchTargetAddr(addr uint16) uint16 {
	return addr + 1 + uint16(in.Target)
}

// IsBranch reports whether the instruction is a PC-relative branch.
func (in Instr) IsBranch() bool {
	return in.Major == MajControl &&
		(in.Ctl == CtlBUN || in.Ctl == CtlBCC || in.Ctl == CtlBRZ)
}

// IsUnconditionalFlow reports whether control never falls through to the
// next word (unconditional branch, always-taken BCC, EXIT, BRX-style ops).
func (in Instr) IsUnconditionalFlow() bool {
	switch in.Major {
	case MajControl:
		return in.Ctl == CtlBUN || in.Ctl == CtlEXIT ||
			(in.Ctl == CtlBCC && in.Cond == CondAlways)
	case MajSpecial:
		if in.Sub == SubCASE {
			return true
		}
		if in.Sub == SubSVC && in.Operand == SvcHalt {
			return true
		}
	}
	return false
}

// IsCall reports whether the instruction is a procedure call of any kind.
func (in Instr) IsCall() bool {
	if in.Major == MajControl && (in.Ctl == CtlPCAL || in.Ctl == CtlSCAL) {
		return true
	}
	return in.Major == MajSpecial && in.Sub == SubStack && in.Operand == OpXCAL
}
