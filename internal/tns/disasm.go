package tns

import "fmt"

var stackOpNames = map[uint8]string{
	OpNOP: "NOP", OpADD: "ADD", OpSUB: "SUB", OpMPY: "MPY", OpDIV: "DIV",
	OpMOD: "MOD", OpNEG: "NEG", OpLAND: "LAND", OpLOR: "LOR", OpXOR: "XOR",
	OpNOT: "NOT", OpCMP: "CMP", OpUCMP: "UCMP", OpDADD: "DADD",
	OpDSUB: "DSUB", OpDNEG: "DNEG", OpDCMP: "DCMP", OpDTST: "DTST",
	OpDUP: "DUP", OpDDUP: "DDUP", OpDEL: "DEL", OpDDEL: "DDEL",
	OpEXCH: "EXCH", OpXCAL: "XCAL", OpMOVB: "MOVB", OpMOVW: "MOVW",
	OpCMPB: "CMPB", OpSCNB: "SCNB", OpDMPY: "DMPY", OpDDIV: "DDIV",
	OpSWAB: "SWAB", OpCTOD: "CTOD", OpDTOC: "DTOC",
}

// StackOpName returns the mnemonic of a zero-operand stack operation.
func StackOpName(op uint8) string {
	if n, ok := stackOpNames[op]; ok {
		return n
	}
	return fmt.Sprintf("STK?%d", op)
}

var condNames = [8]string{"NV", "L", "E", "LE", "G", "NE", "GE", "A"}

// CondName returns the mnemonic suffix of a BCC condition.
func CondName(c uint8) string { return condNames[c&7] }

var modeNames = [4]string{"G+", "L+", "L-", "S-"}

// Disassemble renders the instruction at addr in the reference assembly
// syntax accepted by the tnsasm package.
func Disassemble(addr uint16, w uint16) string {
	in := Decode(w)
	switch in.Major {
	case MajSpecial:
		return disasmSpecial(in)
	case MajControl:
		return disasmControl(addr, in)
	}
	var op string
	switch in.Major {
	case MajLoad:
		op = "LOAD"
	case MajStor:
		op = "STOR"
	case MajLdb:
		op = "LDB"
	case MajStb:
		op = "STB"
	case MajLdd:
		op = "LDD"
	case MajStd:
		op = "STD"
	}
	s := fmt.Sprintf("%s %s%d", op, modeNames[in.Mode], in.Disp)
	if in.Ind {
		s += ",I"
	}
	if in.Idx {
		s += ",X"
	}
	return s
}

func disasmSpecial(in Instr) string {
	switch in.Sub {
	case SubStack:
		return StackOpName(in.Operand)
	case SubLDI:
		return fmt.Sprintf("LDI %d", int8(in.Operand))
	case SubLDHI:
		return fmt.Sprintf("LDHI %d", in.Operand)
	case SubADDI:
		return fmt.Sprintf("ADDI %d", int8(in.Operand))
	case SubCMPI:
		return fmt.Sprintf("CMPI %d", int8(in.Operand))
	case SubLDRA:
		return fmt.Sprintf("LDRA %d", in.Operand&7)
	case SubSTAR:
		return fmt.Sprintf("STAR %d", in.Operand&7)
	case SubSETRP:
		return fmt.Sprintf("SETRP %d", in.Operand&7)
	case SubADDS:
		return fmt.Sprintf("ADDS %d", int8(in.Operand))
	case SubSVC:
		return fmt.Sprintf("SVC %d", in.Operand)
	case SubCASE:
		return "CASE"
	case SubSHL:
		return fmt.Sprintf("SHL %d", in.Operand&15)
	case SubSHRL:
		return fmt.Sprintf("SHRL %d", in.Operand&15)
	case SubSHRA:
		return fmt.Sprintf("SHRA %d", in.Operand&15)
	case SubANDI:
		return fmt.Sprintf("ANDI %d", in.Operand)
	case SubORI:
		return fmt.Sprintf("ORI %d", in.Operand)
	case SubLDE:
		return "LDE"
	case SubSTE:
		return "STE"
	case SubLDBE:
		return "LDBE"
	case SubSTBE:
		return "STBE"
	case SubLGA:
		return fmt.Sprintf("LGA %d", in.Operand)
	case SubLLA:
		return fmt.Sprintf("LLA %d", int8(in.Operand))
	case SubDSHL:
		return fmt.Sprintf("DSHL %d", in.Operand&31)
	case SubDSHRL:
		return fmt.Sprintf("DSHRL %d", in.Operand&31)
	case SubADM:
		if in.Operand&1 != 0 {
			return "ADM ,ATOMIC"
		}
		return "ADM"
	case SubLDPL:
		return fmt.Sprintf("LDPL %d", in.Operand)
	case SubSETT:
		return fmt.Sprintf("SETT %d", in.Operand&1)
	}
	return fmt.Sprintf("?SPECIAL %d,%d", in.Sub, in.Operand)
}

func disasmControl(addr uint16, in Instr) string {
	switch in.Ctl {
	case CtlBUN:
		return fmt.Sprintf("BUN %d", in.BranchTargetAddr(addr))
	case CtlBCC:
		return fmt.Sprintf("B%s %d", CondName(in.Cond), in.BranchTargetAddr(addr))
	case CtlBRZ:
		if in.Cond == 1 {
			return fmt.Sprintf("BNZ %d", in.BranchTargetAddr(addr))
		}
		return fmt.Sprintf("BZ %d", in.BranchTargetAddr(addr))
	case CtlPCAL:
		return fmt.Sprintf("PCAL %d", in.Target)
	case CtlSCAL:
		return fmt.Sprintf("SCAL %d", in.Target)
	case CtlEXIT:
		return fmt.Sprintf("EXIT %d", in.Target)
	}
	return fmt.Sprintf("?CTL %d", in.Ctl)
}
