package interp

import (
	"testing"
	"testing/quick"

	"tnsr/internal/tnsasm"
)

// Property tests pinning the arithmetic flag semantics against wide-integer
// references — the definitions the translated code must match exactly.

func TestAdd16FlagsProperty(t *testing.T) {
	f := func(a, b int16) bool {
		sum, k, v := add16(uint16(a), uint16(b))
		wide := int32(a) + int32(b)
		if int16(sum) != int16(wide) {
			return false
		}
		if k != (uint32(uint16(a))+uint32(uint16(b)) > 0xFFFF) {
			return false
		}
		return v == (wide > 32767 || wide < -32768)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSub16FlagsProperty(t *testing.T) {
	f := func(a, b int16) bool {
		diff, k, v := sub16(uint16(a), uint16(b))
		wide := int32(a) - int32(b)
		if int16(diff) != int16(wide) {
			return false
		}
		if k != (uint16(a) >= uint16(b)) { // K = no borrow
			return false
		}
		return v == (wide > 32767 || wide < -32768)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArithmeticAgainstGoSemantics runs random binary operations through
// the interpreter and compares with Go's arithmetic on int16.
func TestArithmeticAgainstGoSemantics(t *testing.T) {
	type opdef struct {
		mnem string
		ref  func(a, b int16) (int16, bool) // result, defined
	}
	ops := []opdef{
		{"ADD", func(a, b int16) (int16, bool) { return int16(int32(a) + int32(b)), true }},
		{"SUB", func(a, b int16) (int16, bool) { return int16(int32(a) - int32(b)), true }},
		{"MPY", func(a, b int16) (int16, bool) { return int16(int32(a) * int32(b)), true }},
		{"LAND", func(a, b int16) (int16, bool) { return a & b, true }},
		{"LOR", func(a, b int16) (int16, bool) { return a | b, true }},
		{"XOR", func(a, b int16) (int16, bool) { return a ^ b, true }},
		{"DIV", func(a, b int16) (int16, bool) {
			if b == 0 || (a == -32768 && b == -1) {
				return 0, false
			}
			return a / b, true
		}},
		{"MOD", func(a, b int16) (int16, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}},
	}
	for _, op := range ops {
		op := op
		f := func(a, b int16) bool {
			want, defined := op.ref(a, b)
			if !defined {
				return true
			}
			src := `
GLOBALS 4
DATA 1: ` + itoa(uint16(a)) + ` ` + itoa(uint16(b)) + `
MAIN main
PROC main
  LOAD G+1
  LOAD G+2
  ` + op.mnem + `
  STOR G+0
  EXIT 0
ENDPROC
`
			file, err := tnsasm.Assemble("q", src)
			if err != nil {
				return false
			}
			m := New(file, nil)
			if err := m.Run(100); err != nil || m.Trap != 0 {
				return false
			}
			return int16(m.Mem[0]) == want
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", op.mnem, err)
		}
	}
}

func itoa(v uint16) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
