package interp

import "tnsr/internal/tns"

// stackOp executes a zero-operand register-stack operation.
func (m *Machine) stackOp(op uint8, pc uint16) TransferKind {
	switch op {
	case tns.OpNOP:
	case tns.OpADD:
		b := m.pop()
		a := m.pop()
		m.addWithFlags(a, b, false)
	case tns.OpSUB:
		b := m.pop()
		a := m.pop()
		m.addWithFlags(a, b, true)
	case tns.OpMPY:
		b := int16(m.pop())
		a := int16(m.pop())
		p := int32(a) * int32(b)
		m.push(uint16(p))
		m.setCC(int16(p))
		m.setV(p < -32768 || p > 32767)
	case tns.OpDIV:
		b := int16(m.pop())
		a := int16(m.pop())
		if b == 0 {
			m.trap(tns.TrapDivZero)
			return TransferNone
		}
		if a == -32768 && b == -1 {
			m.push(uint16(a))
			m.setCC(int16(a))
			m.overflow()
			return TransferNone
		}
		q := a / b
		m.push(uint16(q))
		m.setCC(q)
		m.V = false
	case tns.OpMOD:
		b := int16(m.pop())
		a := int16(m.pop())
		if b == 0 {
			m.trap(tns.TrapDivZero)
			return TransferNone
		}
		r := a % b
		m.push(uint16(r))
		m.setCC(r)
	case tns.OpNEG:
		v := int16(m.top())
		m.setTop(uint16(-v))
		m.setCC(-v)
		m.setV(v == -32768)
	case tns.OpLAND:
		b := m.pop()
		a := m.pop()
		m.push(a & b)
		m.setCC(int16(a & b))
	case tns.OpLOR:
		b := m.pop()
		a := m.pop()
		m.push(a | b)
		m.setCC(int16(a | b))
	case tns.OpXOR:
		b := m.pop()
		a := m.pop()
		m.push(a ^ b)
		m.setCC(int16(a ^ b))
	case tns.OpNOT:
		v := ^m.top()
		m.setTop(v)
		m.setCC(int16(v))
	case tns.OpCMP:
		b := int16(m.pop())
		a := int16(m.pop())
		m.setCC(compare16(a, b))
	case tns.OpUCMP:
		b := m.pop()
		a := m.pop()
		switch {
		case a < b:
			m.CC = -1
		case a > b:
			m.CC = 1
		default:
			m.CC = 0
		}
	case tns.OpDADD:
		b := m.pop32()
		a := m.pop32()
		s := uint64(a) + uint64(b)
		sum := uint32(s)
		m.push32(sum)
		m.K = s > 0xFFFFFFFF
		m.setCC32(int32(sum))
		m.setV((a^sum)&(b^sum)&0x80000000 != 0)
	case tns.OpDSUB:
		b := m.pop32()
		a := m.pop32()
		diff := a - b
		m.push32(diff)
		m.K = a >= b
		m.setCC32(int32(diff))
		m.setV((a^b)&(a^diff)&0x80000000 != 0)
	case tns.OpDNEG:
		v := int32(m.pop32())
		m.push32(uint32(-v))
		m.setCC32(-v)
		m.setV(v == -2147483648)
	case tns.OpDCMP:
		b := int32(m.pop32())
		a := int32(m.pop32())
		switch {
		case a < b:
			m.CC = -1
		case a > b:
			m.CC = 1
		default:
			m.CC = 0
		}
	case tns.OpDTST:
		lo := m.R[m.RP]
		hi := m.R[(m.RP-1)&7]
		m.setCC32(int32(uint32(hi)<<16 | uint32(lo)))
	case tns.OpDUP:
		m.push(m.top())
	case tns.OpDDUP:
		lo := m.R[m.RP]
		hi := m.R[(m.RP-1)&7]
		m.push(hi)
		m.push(lo)
	case tns.OpDEL:
		m.pop()
	case tns.OpDDEL:
		m.pop()
		m.pop()
	case tns.OpEXCH:
		i, j := m.RP, (m.RP-1)&7
		m.R[i], m.R[j] = m.R[j], m.R[i]
	case tns.OpXCAL:
		plabel := m.pop()
		space := m.Space
		if plabel&0x8000 != 0 {
			space = SpaceLib
			plabel &^= 0x8000
		}
		return m.call(space, plabel, pc)
	case tns.OpMOVB:
		m.movb()
	case tns.OpMOVW:
		m.movw()
	case tns.OpCMPB:
		m.cmpb()
	case tns.OpSCNB:
		m.scnb()
	case tns.OpDMPY:
		b := int32(m.pop32())
		a := int32(m.pop32())
		p := int64(a) * int64(b)
		m.push32(uint32(p))
		m.setCC32(int32(p))
		m.setV(p < -2147483648 || p > 2147483647)
	case tns.OpDDIV:
		b := int32(m.pop32())
		a := int32(m.pop32())
		if b == 0 {
			m.trap(tns.TrapDivZero)
			return TransferNone
		}
		if a == -2147483648 && b == -1 {
			m.push32(uint32(a))
			m.setCC32(a)
			m.overflow()
			return TransferNone
		}
		q := a / b
		m.push32(uint32(q))
		m.setCC32(q)
		m.V = false
	case tns.OpSWAB:
		v := m.top()
		v = v<<8 | v>>8
		m.setTop(v)
		m.setCC(int16(v))
	case tns.OpCTOD:
		v := int16(m.pop())
		m.push32(uint32(int32(v)))
	case tns.OpDTOC:
		v := m.pop32()
		lo := uint16(v)
		m.push(lo)
		m.setCC(int16(lo))
		m.setV(int32(v) != int32(int16(lo)))
	default:
		m.trap(tns.TrapBadOp)
	}
	return TransferNone
}

// movb moves bytes between byte-addressed memory. A negative count moves
// |count| bytes right to left (for overlapping moves); a positive count
// moves left to right byte by byte, with the authentic "smear" behaviour on
// overlap. The operands are pushed src, dst, count.
func (m *Machine) movb() {
	count := int16(m.pop())
	dst := m.pop()
	src := m.pop()
	n := int(count)
	if n < 0 {
		n = -n
		for i := n - 1; i >= 0; i-- {
			m.storeByte(dst+uint16(i), uint8(m.loadByte(src+uint16(i))))
		}
	} else {
		for i := 0; i < n; i++ {
			m.storeByte(dst+uint16(i), uint8(m.loadByte(src+uint16(i))))
		}
	}
	m.Prof.LongUnits += int64(n)
}

// movw moves words; operands pushed src, dst, count (word addresses).
func (m *Machine) movw() {
	count := int16(m.pop())
	dst := m.pop()
	src := m.pop()
	n := int(count)
	if n < 0 {
		n = -n
		for i := n - 1; i >= 0; i-- {
			m.store(dst+uint16(i), m.Mem[src+uint16(i)])
		}
	} else {
		for i := 0; i < n; i++ {
			m.store(dst+uint16(i), m.Mem[src+uint16(i)])
		}
	}
	m.Prof.LongUnits += int64(n)
}

// cmpb compares byte strings; operands pushed a, b, count; CC is the
// relation of string a to string b.
func (m *Machine) cmpb() {
	count := m.pop()
	b := m.pop()
	a := m.pop()
	m.CC = 0
	for i := uint16(0); i < count; i++ {
		av := m.loadByte(a + i)
		bv := m.loadByte(b + i)
		if av != bv {
			if av < bv {
				m.CC = -1
			} else {
				m.CC = 1
			}
			m.Prof.LongUnits += int64(i + 1)
			return
		}
	}
	m.Prof.LongUnits += int64(count)
}

// scnb scans for a byte; operands pushed addr, test, limit. It pushes the
// number of bytes skipped and sets CC to E if the byte was found within the
// limit, NE otherwise.
func (m *Machine) scnb() {
	limit := m.pop()
	test := uint8(m.pop())
	addr := m.pop()
	for i := uint16(0); i < limit; i++ {
		if uint8(m.loadByte(addr+i)) == test {
			m.push(i)
			m.CC = 0
			m.Prof.LongUnits += int64(i + 1)
			return
		}
	}
	m.push(limit)
	m.CC = 1
	m.Prof.LongUnits += int64(limit)
}
