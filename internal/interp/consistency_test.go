package interp

import (
	"testing"

	"tnsr/internal/tns"
	"tnsr/internal/tnsasm"
)

// TestMetaConsistencyWithExecution ties the tns package's static metadata
// tables — RPDelta, Pops, Flags — to the interpreter's actual behaviour,
// instruction by instruction. The Accelerator's whole RP and liveness
// analysis rests on these tables being truthful.
func TestMetaConsistencyWithExecution(t *testing.T) {
	type tcase struct {
		src string // instructions executed with a prepared register stack
	}
	// Each case runs inside a prepared machine with a known RP and checks
	// the dynamic RP change against RPDelta of the LAST instruction.
	cases := []string{
		"LDI 5", "LDHI 3", "ADDI 2", "CMPI 0", "ADDS 1", "ADDS -1",
		"LGA 8", "LLA 2", "LDPL 0", "SETT 0",
		"LOAD G+1", "STOR G+1", "LDB G+1", "STB G+1", "LDD G+2", "STD G+2",
		"LOAD G+1,X", "STOR G+1,X",
		"ADD", "SUB", "MPY", "MOD", "NEG", "LAND", "LOR", "XOR", "NOT",
		"CMP", "UCMP", "DUP", "DDUP", "DEL", "DDEL", "EXCH", "SWAB",
		"CTOD", "DTOC", "DADD", "DSUB", "DNEG", "DCMP", "DTST",
		"SHL 2", "SHRL 1", "SHRA 1", "ANDI 7", "ORI 1",
		"DSHL 2", "DSHRL 1",
		"LDRA 3", "STAR 3",
	}
	for _, instr := range cases {
		instr := instr
		t.Run(instr, func(t *testing.T) {
			src := `
GLOBALS 16
DATA 1: 3 4 5 6
MAIN main
PROC main
  LDI 1
  LDI 2
  LDI 3
  LDI 4
  LDI 1
  LDI 2
  ` + instr + `
  NOP
  EXIT 0
ENDPROC
`
			f := tnsasm.MustAssemble("meta", src)
			m := New(f, nil)
			// Step to just before the instruction under test.
			for i := 0; i < 6; i++ {
				m.Step()
			}
			rpBefore := int(m.RP)
			ccBefore, kBefore, vBefore := m.CC, m.K, m.V
			w := f.Code[6]
			in := tns.Decode(w)
			m.Step()
			if m.Halted {
				t.Fatalf("trap %d executing %s", m.Trap, instr)
			}
			// RP delta.
			d := in.RPDelta()
			if d != tns.RPUnknown {
				got := (int(m.RP) - rpBefore + 16) % 8
				want := ((d % 8) + 8) % 8
				if got != want {
					t.Errorf("%s: RP delta %d, metadata says %d", instr, got, want)
				}
			}
			// Flags: if the metadata says an instruction does not write a
			// flag, the flag must be unchanged.
			fl := in.Flags()
			if !fl.CC && m.CC != ccBefore {
				t.Errorf("%s: CC changed but Flags().CC is false", instr)
			}
			if !fl.K && m.K != kBefore {
				t.Errorf("%s: K changed but Flags().K is false", instr)
			}
			if !fl.V && m.V != vBefore {
				t.Errorf("%s: V changed but Flags().V is false", instr)
			}
		})
	}
}

// TestLongOpsMeta checks the block operations' metadata the same way.
func TestLongOpsMeta(t *testing.T) {
	for _, instr := range []string{"MOVB", "MOVW", "CMPB", "SCNB"} {
		instr := instr
		t.Run(instr, func(t *testing.T) {
			src := `
GLOBALS 32
DATA 8: 0x6162 0x6364
MAIN main
PROC main
  LDI 16
  LDI 24
  LDI 2
  ` + instr + `
  NOP
  EXIT 0
ENDPROC
`
			f := tnsasm.MustAssemble("long", src)
			m := New(f, nil)
			for i := 0; i < 3; i++ {
				m.Step()
			}
			rpBefore := int(m.RP)
			in := tns.Decode(f.Code[3])
			m.Step()
			if m.Halted {
				t.Fatalf("trap %d", m.Trap)
			}
			d := in.RPDelta()
			got := (int(m.RP) - rpBefore + 16) % 8
			want := ((d % 8) + 8) % 8
			if got != want {
				t.Errorf("%s: RP delta %d, metadata says %d", instr, got, want)
			}
		})
	}
}
