package interp

import (
	"strings"
	"testing"

	"tnsr/internal/tns"
	"tnsr/internal/tnsasm"
)

// run assembles and executes a program, failing the test on traps.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	f, err := tnsasm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(f, nil)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Trap != tns.TrapNone {
		t.Fatalf("trap %d at P=%d", m.Trap, m.TrapP)
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
GLOBALS 8
MAIN main
PROC main
  LDI 7
  LDI 5
  ADD
  STOR G+0     ; 12
  LDI 7
  LDI 5
  SUB
  STOR G+1     ; 2
  LDI 7
  LDI 5
  MPY
  STOR G+2     ; 35
  LDI 47
  LDI 5
  DIV
  STOR G+3     ; 9
  LDI 47
  LDI 5
  MOD
  STOR G+4     ; 2
  LDI 7
  NEG
  STOR G+5     ; -7
  EXIT 0
ENDPROC
`)
	want := []int16{12, 2, 35, 9, 2, -7}
	for i, w := range want {
		if got := int16(m.Mem[i]); got != w {
			t.Errorf("G+%d = %d, want %d", i, got, w)
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	m := run(t, `
GLOBALS 8
MAIN main
PROC main
  LDI 12
  LDI 10
  LAND
  STOR G+0     ; 8
  LDI 12
  LDI 10
  LOR
  STOR G+1     ; 14
  LDI 12
  LDI 10
  XOR
  STOR G+2     ; 6
  LDI 0
  NOT
  STOR G+3     ; -1
  LDI 1
  SHL 4
  STOR G+4     ; 16
  LDI -16
  SHRA 2
  STOR G+5     ; -4
  LDI -16
  SHRL 12
  STOR G+6     ; 15
  LDI 51
  ANDI 15
  STOR G+7     ; 3
  EXIT 0
ENDPROC
`)
	want := []int16{8, 14, 6, -1, 16, -4, 15, 3}
	for i, w := range want {
		if got := int16(m.Mem[i]); got != w {
			t.Errorf("G+%d = %d, want %d", i, got, w)
		}
	}
}

func TestConstantsAndRegisterOps(t *testing.T) {
	m := run(t, `
GLOBALS 8
MAIN main
PROC main
  LDI 4
  LDHI 210    ; 4*256+210 = 1234
  STOR G+0
  LDI 3
  DUP
  ADD
  STOR G+1    ; 6
  LDI 1
  LDI 2
  EXCH
  STOR G+2    ; 1 (top after EXCH)
  STOR G+3    ; 2
  LDI 9
  STAR 0
  LDRA 0
  LDRA 0
  ADD
  STOR G+4    ; 18
  EXIT 0
ENDPROC
`)
	want := []int16{1234, 6, 1, 2, 18}
	for i, w := range want {
		if got := int16(m.Mem[i]); got != w {
			t.Errorf("G+%d = %d, want %d", i, got, w)
		}
	}
}

func TestMemoryAddressing(t *testing.T) {
	m := run(t, `
GLOBALS 16
DATA 8: 100 101 102 103
MAIN main
PROC main
  ADDS 4        ; locals L+1..L+4
  LOAD G+8
  STOR G+0      ; 100
  LDI 8
  STOR G+1      ; pointer to G+8 in G+1
  LOAD G+1,I
  STOR G+2      ; 100 via indirection
  LOAD G+8,X ; needs index on top: index pushed... see below
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 100 || m.Mem[2] != 100 {
		t.Errorf("direct/indirect loads: %v", m.Mem[:4])
	}
}

func TestIndexedAddressing(t *testing.T) {
	m := run(t, `
GLOBALS 16
DATA 8: 100 101 102 103
MAIN main
PROC main
  LDI 2
  LOAD G+8,X
  STOR G+0      ; 102
  LDI 55
  LDI 3
  STOR G+8,X    ; G+11 = 55
  LOAD G+11
  STOR G+1
  EXIT 0
ENDPROC
`)
	if int16(m.Mem[0]) != 102 {
		t.Errorf("indexed load = %d, want 102", int16(m.Mem[0]))
	}
	if int16(m.Mem[1]) != 55 {
		t.Errorf("indexed store: G+11 = %d, want 55", int16(m.Mem[1]))
	}
}

func TestByteAddressing(t *testing.T) {
	m := run(t, `
GLOBALS 16
DATA 8: 0x4142 0x4344
MAIN main
PROC main
  LDI 16        ; byte address of G+8 high byte
  STOR G+0
  LOAD G+0
  STOR G+1      ; byte pointer in G+1
  LDI 0
  LDB G+1,I,X
  STOR G+2      ; 'A' = 0x41
  LDI 3
  LDB G+1,I,X
  STOR G+3      ; 'D' = 0x44
  LDI 90        ; 'Z'
  LDI 1
  STB G+1,I,X   ; second byte of G+8
  LOAD G+8
  STOR G+4      ; 0x415A
  LDB G+9       ; direct byte load: high byte of word 9
  STOR G+5      ; 0x43
  EXIT 0
ENDPROC
`)
	if m.Mem[2] != 0x41 || m.Mem[3] != 0x44 {
		t.Errorf("byte loads = %x,%x", m.Mem[2], m.Mem[3])
	}
	if m.Mem[4] != 0x415A {
		t.Errorf("byte store result = %04x, want 415A", m.Mem[4])
	}
	if m.Mem[5] != 0x43 {
		t.Errorf("direct LDB = %02x, want 43", m.Mem[5])
	}
}

func TestDoubleOps(t *testing.T) {
	m := run(t, `
GLOBALS 16
MAIN main
PROC main
  LDI 1
  LDI 0         ; pair = 0x00010000 = 65536
  LDI 0
  LDI 100       ; pair = 100
  DADD
  STD G+0       ; 65636 = 0x00010064
  LDI 0
  LDI 3
  LDI 0
  LDI 100
  DMPY
  STD G+2       ; 300
  LDD G+2
  LDI 0
  LDI 7
  DSUB
  STD G+4       ; 293
  LDI 0
  LDI 3
  LDHI 232      ; 3*256+232 = 1000
  LDI 0
  LDI 10
  DDIV
  STD G+6       ; 100
  LDI -1
  CTOD
  STD G+8       ; 0xFFFFFFFF
  LDD G+8
  DNEG
  STD G+10      ; 1
  LDD G+0
  DSHL 4
  STD G+12
  EXIT 0
ENDPROC
`)
	get32 := func(i int) int32 {
		return int32(uint32(m.Mem[i])<<16 | uint32(m.Mem[i+1]))
	}
	if get32(0) != 65636 {
		t.Errorf("DADD = %d", get32(0))
	}
	if get32(2) != 300 {
		t.Errorf("DMPY = %d", get32(2))
	}
	if get32(4) != 293 {
		t.Errorf("DSUB = %d", get32(4))
	}
	if get32(6) != 100 {
		t.Errorf("DDIV = %d", get32(6))
	}
	if get32(8) != -1 {
		t.Errorf("CTOD = %d", get32(8))
	}
	if get32(10) != 1 {
		t.Errorf("DNEG = %d", get32(10))
	}
	if get32(12) != 65636<<4 {
		t.Errorf("DSHL = %d", get32(12))
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a conditional loop.
	m := run(t, `
GLOBALS 4
MAIN main
PROC main
  LDI 0
  STOR G+0      ; sum
  LDI 1
  STOR G+1      ; i
loop:
  LOAD G+1
  CMPI 10
  BG done
  LOAD G+0
  LOAD G+1
  ADD
  STOR G+0
  LOAD G+1
  ADDI 1
  STOR G+1
  BUN loop
done:
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 55 {
		t.Errorf("sum = %d, want 55", m.Mem[0])
	}
}

func TestCaseJump(t *testing.T) {
	src := `
GLOBALS 4
MAIN main
PROC main
  LOAD G+1
  CASE
CASETAB c0, c1, c2
  LDI -1        ; out of range falls through here
  STOR G+0
  EXIT 0
c0:
  LDI 10
  STOR G+0
  EXIT 0
c1:
  LDI 20
  STOR G+0
  EXIT 0
c2:
  LDI 30
  STOR G+0
  EXIT 0
ENDPROC
`
	for idx, want := range map[uint16]int16{0: 10, 1: 20, 2: 30, 3: -1, 500: -1} {
		f := tnsasm.MustAssemble("case", src)
		m := New(f, nil)
		m.Mem[1] = idx
		if err := m.Run(1000); err != nil {
			t.Fatal(err)
		}
		if int16(m.Mem[0]) != want {
			t.Errorf("case %d -> %d, want %d", idx, int16(m.Mem[0]), want)
		}
	}
}

func TestProcedureCallsAndRecursion(t *testing.T) {
	// fib(n) computed recursively; result returned on the register stack.
	m := run(t, `
GLOBALS 4
MAIN main
PROC fib RESULT 1 ARGS 1
  ADDS 1        ; local temp at L+1
  LOAD L-3      ; n
  LDI 2
  CMP           ; pops both operands: the register stack stays clean
  BGE rec
  LOAD L-3
  EXIT 1
rec:
  LOAD L-3
  ADDI -1
  ADDS 1
  STOR S-0      ; push argument on the memory stack
  PCAL fib      ; fib(n-1) now on register stack
  STOR L+1      ; spill to a local across the second call
  LOAD L-3
  ADDI -2
  ADDS 1
  STOR S-0
  PCAL fib
  LOAD L+1
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 10
  ADDS 1
  STOR S-0
  PCAL fib
  STOR G+0
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 55 {
		t.Errorf("fib(10) = %d, want 55", m.Mem[0])
	}
}

func TestXCALAndSETRP(t *testing.T) {
	m := run(t, `
GLOBALS 4
MAIN main
PROC double RESULT 1 ARGS 1
  LOAD L-3
  DUP
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 21
  ADDS 1
  STOR S-0      ; argument on the memory stack
  LDPL 0        ; PLabel of "double"
  XCAL
  SETRP 0       ; compiler clue: one result word
  STOR G+0
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 42 {
		t.Errorf("XCAL double(21) = %d, want 42", m.Mem[0])
	}
}

func TestLocalsAndParams(t *testing.T) {
	m := run(t, `
GLOBALS 4
MAIN main
PROC addsq RESULT 1 ARGS 2
  ADDS 1        ; one local at L+1
  LOAD L-4      ; first arg
  LOAD L-4
  MPY
  STOR L+1
  LOAD L-3      ; second arg
  LOAD L-3
  MPY
  LOAD L+1
  ADD
  EXIT 2
ENDPROC
PROC main
  LDI 3
  STOR G+1
  LOAD G+1      ; push arg 1 = 3 onto memory stack? no: register stack
  ADDS 1
  STOR S-0      ; arg 1 = 3 at S
  LDI 4
  ADDS 1
  STOR S-0      ; arg 2 = 4
  PCAL addsq
  STOR G+0      ; 25
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 25 {
		t.Errorf("addsq(3,4) = %d, want 25", m.Mem[0])
	}
}

func TestMOVBAndStrings(t *testing.T) {
	m := run(t, `
GLOBALS 32
DATA 8: 0x6865 0x6C6C 0x6F00   ; "hello"
MAIN main
PROC main
  LDI 16        ; src byte addr (word 8)
  LDI 32        ; dst byte addr (word 16)
  LDI 5
  MOVB
  LDI 32
  LDI 16
  LDI 5
  CMPB          ; compare dst against src
  BNE bad
  LDI 1
  STOR G+0
  EXIT 0
bad:
  LDI 0
  STOR G+0
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 1 {
		t.Error("MOVB copy then CMPB mismatch")
	}
	if m.Mem[16] != 0x6865 || m.Mem[17] != 0x6C6C {
		t.Errorf("copied words: %04x %04x", m.Mem[16], m.Mem[17])
	}
}

func TestMOVBOverlapSmear(t *testing.T) {
	// Forward overlapping move smears the first byte, the authentic
	// behaviour the paper's millicode must preserve.
	m := run(t, `
GLOBALS 16
DATA 4: 0x4142 0x4344 0x0000
MAIN main
PROC main
  LDI 8         ; src: byte addr of G+4
  LDI 9         ; dst: one byte later
  LDI 3
  MOVB
  EXIT 0
ENDPROC
`)
	// Bytes were A B C D; copying 3 bytes src=0 dst=1 forward yields A A A A.
	if m.Mem[4] != 0x4141 || m.Mem[5] != 0x4141 {
		t.Errorf("smear: %04x %04x, want 4141 4141", m.Mem[4], m.Mem[5])
	}
}

func TestSCNB(t *testing.T) {
	m := run(t, `
GLOBALS 16
DATA 4: 0x6162 0x6364   ; "abcd"
MAIN main
PROC main
  LDI 8         ; byte addr of 'a'
  LDI 99        ; 'c'
  LDI 4
  SCNB
  STOR G+0      ; position 2
  BE found
  EXIT 0
found:
  LDI 1
  STOR G+1
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 2 || m.Mem[1] != 1 {
		t.Errorf("SCNB pos=%d found=%d", m.Mem[0], m.Mem[1])
	}
}

func TestExtendedAddressing(t *testing.T) {
	m := run(t, `
GLOBALS 16
DATA 8: 1234
MAIN main
PROC main
  LDI 0
  LDI 16        ; 32-bit byte address of word 8
  LDE
  STOR G+0      ; 1234
  LDI 77
  LDI 0
  LDI 20        ; word 10
  STE
  LOAD G+10
  STOR G+1      ; 77
  LDI 0
  LDI 17        ; low byte of word 8 (1234 = 0x04D2)
  LDBE
  STOR G+2      ; 0xD2 = 210
  LDI -1        ; low byte 0xFF is stored
  LDI 0
  LDI 24        ; high byte of word 12
  STBE
  LOAD G+12
  STOR G+3      ; 0xFF00
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 1234 || m.Mem[1] != 77 || m.Mem[2] != 210 || m.Mem[3] != 0xFF00 {
		t.Errorf("extended ops: %v", m.Mem[:4])
	}
}

func TestADM(t *testing.T) {
	m := run(t, `
GLOBALS 8
DATA 3: 40
MAIN main
PROC main
  LDI 2
  LDI 3         ; address
  ADM
  LDI 5
  LDI 3
  ADM ,ATOMIC
  EXIT 0
ENDPROC
`)
	if m.Mem[3] != 47 {
		t.Errorf("ADM result = %d, want 47", m.Mem[3])
	}
}

func TestOverflowTrap(t *testing.T) {
	f := tnsasm.MustAssemble("ovf", `
GLOBALS 4
MAIN main
PROC main
  SETT 1
  LDI 127
  LDHI 255      ; 32767
  ADDI 1
  STOR G+0
  EXIT 0
ENDPROC
`)
	m := New(f, nil)
	m.Run(1000)
	if m.Trap != tns.TrapOverflow {
		t.Errorf("trap = %d, want overflow", m.Trap)
	}
	// Without traps enabled, V is set but execution continues.
	f2 := tnsasm.MustAssemble("ovf2", `
GLOBALS 4
MAIN main
PROC main
  LDI 127
  LDHI 255
  ADDI 1
  STOR G+0
  EXIT 0
ENDPROC
`)
	m2 := New(f2, nil)
	if err := m2.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m2.Trap != tns.TrapNone {
		t.Error("should not trap with T clear")
	}
	if int16(m2.Mem[0]) != -32768 {
		t.Errorf("wrapped result = %d", int16(m2.Mem[0]))
	}
}

func TestDivZeroTrap(t *testing.T) {
	f := tnsasm.MustAssemble("dz", `
MAIN main
PROC main
  LDI 1
  LDI 0
  DIV
  EXIT 0
ENDPROC
`)
	m := New(f, nil)
	m.Run(1000)
	if m.Trap != tns.TrapDivZero {
		t.Errorf("trap = %d, want divzero", m.Trap)
	}
}

func TestConsoleSVC(t *testing.T) {
	m := run(t, `
GLOBALS 8
DATA 2: 0x6869   ; "hi"
MAIN main
PROC main
  LDI 104       ; 'h'
  SVC 1
  LDI -42
  SVC 2
  LDI 4         ; byte addr of G+2
  LDI 2
  SVC 3
  EXIT 0
ENDPROC
`)
	if got := m.Console.String(); got != "h-42hi" {
		t.Errorf("console = %q", got)
	}
}

func TestHaltSVC(t *testing.T) {
	f := tnsasm.MustAssemble("halt", `
MAIN main
PROC main
  LDI 3
  SVC 0
ENDPROC
`)
	m := New(f, nil)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || m.ExitStatus != 3 {
		t.Errorf("halted=%v status=%d", m.Halted, m.ExitStatus)
	}
}

func TestSystemLibraryCall(t *testing.T) {
	lib := tnsasm.MustAssemble("lib", `
PROC lib_triple RESULT 1 ARGS 1
  LOAD L-3
  DUP
  DUP
  ADD
  ADD
  EXIT 1
ENDPROC
`)
	user := tnsasm.MustAssemble("user", `
GLOBALS 4
MAIN main
PROC main
  LDI 14
  ADDS 1
  STOR S-0
  SCAL 0
  STOR G+0
  EXIT 0
ENDPROC
`)
	m := New(user, lib)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0] != 42 {
		t.Errorf("lib_triple(14) = %d, want 42", m.Mem[0])
	}
	if m.Space != SpaceUser {
		t.Error("should return to user space")
	}
}

func TestFlagsCCKV(t *testing.T) {
	f := tnsasm.MustAssemble("flags", `
MAIN main
PROC main
  LDI -1
  LDI 1
  ADD          ; 0, carry out
  EXIT 0
ENDPROC
`)
	m := New(f, nil)
	// Step to just after ADD.
	for i := 0; i < 3; i++ {
		m.Step()
	}
	if m.CC != 0 || !m.K || m.V {
		t.Errorf("CC=%d K=%v V=%v after -1+1", m.CC, m.K, m.V)
	}
}

func TestUCMP(t *testing.T) {
	m := run(t, `
GLOBALS 4
MAIN main
PROC main
  LDI -1        ; 0xFFFF
  LDI 1
  UCMP          ; unsigned: 0xFFFF > 1
  BG big
  LDI 0
  STOR G+0
  EXIT 0
big:
  LDI 1
  STOR G+0
  EXIT 0
ENDPROC
`)
	if m.Mem[0] != 1 {
		t.Error("UCMP should compare unsigned")
	}
}

func TestStoreTrace(t *testing.T) {
	f := tnsasm.MustAssemble("trace", `
GLOBALS 4
MAIN main
PROC main
  LDI 1
  STOR G+0
  LDI 2
  STOR G+1
  EXIT 0
ENDPROC
`)
	m := New(f, nil)
	var stores []uint32
	m.StoreTrace = func(a, v uint16) {
		stores = append(stores, uint32(a)<<16|uint32(v))
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	// The two explicit stores must appear, in order, within the trace
	// (marker pushes are also traced).
	var got []uint32
	for _, s := range stores {
		if s>>16 < 4 {
			got = append(got, s)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 0x10002 {
		t.Errorf("store trace = %x", got)
	}
}

func TestProfileCounts(t *testing.T) {
	m := run(t, `
GLOBALS 4
MAIN main
PROC main
  LDI 1
  STOR G+0
  LOAD G+0
  DEL
  EXIT 0
ENDPROC
`)
	if m.Prof.Instrs != 5 {
		t.Errorf("instrs = %d, want 5", m.Prof.Instrs)
	}
	if m.Prof.Counts[tns.ClassMem] != 2 {
		t.Errorf("mem class = %d, want 2", m.Prof.Counts[tns.ClassMem])
	}
	if m.Prof.Counts[tns.ClassExit] != 1 {
		t.Errorf("exit class = %d", m.Prof.Counts[tns.ClassExit])
	}
}

func TestRunawayGuard(t *testing.T) {
	f := tnsasm.MustAssemble("loop", `
MAIN main
PROC main
here:
  BUN here
ENDPROC
`)
	m := New(f, nil)
	if err := m.Run(1000); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("want runaway error, got %v", err)
	}
}

func TestBadPEPTrap(t *testing.T) {
	f := tnsasm.MustAssemble("badpep", `
MAIN main
PROC main
  PCAL 99
ENDPROC
`)
	m := New(f, nil)
	m.Run(100)
	if m.Trap != tns.TrapBadPEP {
		t.Errorf("trap = %d, want bad PEP", m.Trap)
	}
	// SCAL with no library also traps.
	f2 := tnsasm.MustAssemble("nolib", `
MAIN main
PROC main
  SCAL 0
ENDPROC
`)
	m2 := New(f2, nil)
	m2.Run(100)
	if m2.Trap != tns.TrapBadPEP {
		t.Errorf("trap = %d, want bad PEP for SCAL without library", m2.Trap)
	}
}

func TestBadSVCTrap(t *testing.T) {
	f := tnsasm.MustAssemble("badsvc", `
MAIN main
PROC main
  SVC 99
ENDPROC
`)
	m := New(f, nil)
	m.Run(100)
	if m.Trap != tns.TrapBadSVC {
		t.Errorf("trap = %d, want bad SVC", m.Trap)
	}
}

func TestStackOverflowTrap(t *testing.T) {
	f := tnsasm.MustAssemble("sovf", `
MAIN main
PROC grow
  ADDS 120
  PCAL grow
  EXIT 0
ENDPROC
PROC main
  PCAL grow
  EXIT 0
ENDPROC
`)
	m := New(f, nil)
	m.Run(10_000_000)
	if m.Trap != tns.TrapStackOvf {
		t.Errorf("trap = %d, want stack overflow", m.Trap)
	}
}

func TestExtendedAddressTrap(t *testing.T) {
	f := tnsasm.MustAssemble("eaddr", `
MAIN main
PROC main
  LDI 2
  LDI 0
  LDE
  EXIT 0
ENDPROC
`)
	m := New(f, nil)
	m.Run(100)
	if m.Trap != tns.TrapAddress {
		t.Errorf("trap = %d, want address trap for 0x00020000", m.Trap)
	}
}
