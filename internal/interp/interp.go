// Package interp executes TNS object code with exact architectural
// semantics. It serves two roles from the paper:
//
//   - paired with a CISC machine cost model it is the TNS hardware baseline
//     (CLX 800, VLX, Cyclone), and
//   - paired with the software-interpreter cost model it is the run-time
//     fallback interpreter on the Cyclone/R, entered at puzzle points and
//     left again at the next call or return that finds a register-exact
//     point in the PMap.
//
// The interpreter counts executed instructions per cost class rather than
// cycles, so a single run can be priced under every machine model.
package interp

import (
	"bytes"
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/tns"
)

// Space identifies a code space: the user codefile or the system library.
type Space uint8

const (
	SpaceUser Space = 0
	SpaceLib  Space = 1
)

// ENV word packing (stored in stack markers). Only RP, the trap-enable bit
// and the code-space bit are architecturally recorded; the CC/K/V flags are
// not part of the stored ENV in this ISA revision (CC is only observable
// through conditional branches, K/V only through overflow traps), which is
// what lets the Accelerator elide dead flag computation without the marker
// stores betraying the difference.
const (
	envRPShift    = 0 // bits 0..2
	envTBit       = 1 << 7
	envSpaceBit   = 1 << 8
	HaltReturnP   = 0xFFFF // sentinel return address that halts the machine
	initialMargin = 4      // words between globals and the first frame
)

// Profile counts executed instructions by cost class for pricing under the
// machine models, plus the units moved by long-running instructions.
type Profile struct {
	Counts    [tns.NumCostClasses]int64
	LongUnits int64
	Instrs    int64
}

// Add accumulates other into p.
func (p *Profile) Add(other *Profile) {
	for i := range p.Counts {
		p.Counts[i] += other.Counts[i]
	}
	p.LongUnits += other.LongUnits
	p.Instrs += other.Instrs
}

// Sub returns p minus other, for deltas across an execution interlude.
func (p *Profile) Sub(other *Profile) Profile {
	var d Profile
	for i := range p.Counts {
		d.Counts[i] = p.Counts[i] - other.Counts[i]
	}
	d.LongUnits = p.LongUnits - other.LongUnits
	d.Instrs = p.Instrs - other.Instrs
	return d
}

// Machine is the complete architectural state of a TNS processor plus the
// mapped codefiles.
type Machine struct {
	// Register barrel and RP.
	R  [8]uint16
	RP uint8
	// Control state.
	P     uint16
	Space Space
	L, S  uint16
	// ENV flags. CC is -1, 0 or +1.
	CC   int8
	K, V bool
	T    bool
	// Data space.
	Mem []uint16

	User *codefile.File
	Lib  *codefile.File // may be nil

	Console bytes.Buffer

	Halted     bool
	ExitStatus uint16
	Trap       int
	TrapP      uint16 // address of the trapping instruction

	Prof Profile

	// StoreTrace, when non-nil, receives every data-memory store as
	// (address, value) pairs; the translation-fidelity property tests use
	// it to check that translated code performs exactly the same sequence
	// of stores as the original CISC code, as the paper requires.
	StoreTrace func(addr uint16, value uint16)

	// Obs, when non-nil, records per-instruction mode residency; the hook
	// fires once per counted instruction, so its totals match Prof.Instrs
	// exactly. Nil costs one comparison per step.
	Obs *obs.Recorder

	// PGO, when non-nil, captures the facts profile-guided retranslation
	// feeds back to the Accelerator: resolved call targets, dynamic result
	// sizes observed at returns, CASE jump targets, and interpreted
	// residency. Same contract as Obs: nil costs one comparison per hook.
	PGO *pgo.Capture
}

// New creates a machine with the user codefile (and optional library)
// loaded: globals initialized from the data image, L and S placed above the
// globals, and P at the main procedure with a halt-sentinel stack marker.
func New(user, lib *codefile.File) *Machine {
	m := &Machine{
		Mem:  make([]uint16, tns.DataWords),
		User: user,
		Lib:  lib,
		RP:   tns.RPEmpty,
	}
	for _, seg := range user.Data {
		copy(m.Mem[seg.Addr:], seg.Words)
	}
	if lib != nil {
		for _, seg := range lib.Data {
			copy(m.Mem[seg.Addr:], seg.Words)
		}
	}
	base := user.GlobalWords + initialMargin
	if lib != nil && lib.GlobalWords > user.GlobalWords {
		base = lib.GlobalWords + initialMargin
	}
	// Push the initial stack marker so main's EXIT halts cleanly.
	m.S = base
	m.store(m.S+1, HaltReturnP)
	m.store(m.S+2, m.packENV())
	m.store(m.S+3, 0)
	m.S += tns.MarkerWords
	m.L = m.S
	m.P = user.Procs[user.MainPEP].Entry
	m.Space = SpaceUser
	return m
}

// CodeFile returns the codefile for a space.
func (m *Machine) CodeFile(s Space) *codefile.File {
	if s == SpaceLib {
		return m.Lib
	}
	return m.User
}

func (m *Machine) code() []uint16 { return m.CodeFile(m.Space).Code }

func (m *Machine) packENV() uint16 {
	env := uint16(m.RP)
	if m.T {
		env |= envTBit
	}
	if m.Space == SpaceLib {
		env |= envSpaceBit
	}
	return env
}

// PackENV exposes the ENV encoding for the translated-code runtime, which
// must build identical stack markers.
func PackENV(rp uint8, t bool, space Space) uint16 {
	m := Machine{RP: rp, T: t, Space: space}
	return m.packENV()
}

// UnpackENVSpace extracts the code-space bit from a packed ENV word.
func UnpackENVSpace(env uint16) Space {
	if env&envSpaceBit != 0 {
		return SpaceLib
	}
	return SpaceUser
}

func (m *Machine) push(v uint16) {
	m.RP = (m.RP + 1) & 7
	m.R[m.RP] = v
}

func (m *Machine) pop() uint16 {
	v := m.R[m.RP]
	m.RP = (m.RP - 1) & 7
	return v
}

func (m *Machine) top() uint16 { return m.R[m.RP] }

func (m *Machine) setTop(v uint16) { m.R[m.RP] = v }

func (m *Machine) store(addr, v uint16) {
	m.Mem[addr] = v
	if m.StoreTrace != nil {
		m.StoreTrace(addr, v)
	}
}

func (m *Machine) setCC(v int16) {
	switch {
	case v < 0:
		m.CC = -1
	case v == 0:
		m.CC = 0
	default:
		m.CC = 1
	}
}

func (m *Machine) setCC32(v int32) {
	switch {
	case v < 0:
		m.CC = -1
	case v == 0:
		m.CC = 0
	default:
		m.CC = 1
	}
}

func (m *Machine) trap(code int) {
	m.Trap = code
	m.TrapP = m.P
	m.Halted = true
}

func (m *Machine) overflow() {
	m.V = true
	if m.T {
		m.trap(tns.TrapOverflow)
	}
}

// setV records the overflow outcome of a V-writing operation: V is written
// (not merely set) by every such operation, so a non-overflowing ADD clears
// a stale V.
func (m *Machine) setV(v bool) {
	if v {
		m.overflow()
	} else {
		m.V = false
	}
}

// TransferKind describes the control transfer a Step performed, so a
// mixed-mode driver can probe the PMap for a register-exact re-entry point.
type TransferKind uint8

const (
	TransferNone TransferKind = iota
	TransferCall              // PCAL/SCAL/XCAL completed; P is the entry
	TransferExit              // EXIT completed; P is the return point
)

// Step executes one instruction. It returns the kind of call/return
// transfer performed, if any. The machine must not be halted.
func (m *Machine) Step() TransferKind {
	code := m.code()
	if int(m.P) >= len(code) {
		m.trap(tns.TrapBadOp)
		return TransferNone
	}
	w := code[m.P]
	in := tns.Decode(w)
	m.Prof.Counts[in.Class()]++
	m.Prof.Instrs++
	if m.Obs != nil {
		m.Obs.InterpStep(uint8(m.Space), m.P)
	}
	if m.PGO != nil {
		m.PGO.InterpStep(uint8(m.Space), m.P)
	}
	pc := m.P
	m.P++ // default: fall through; transfers overwrite
	switch in.Major {
	case tns.MajLoad, tns.MajStor, tns.MajLdb, tns.MajStb,
		tns.MajLdd, tns.MajStd:
		m.memOp(in)
	case tns.MajControl:
		return m.controlOp(in, pc)
	case tns.MajSpecial:
		return m.specialOp(in, pc)
	}
	return TransferNone
}

// Run executes until the machine halts or maxInstrs instructions have
// executed (0 means no limit). It returns an error on runaway execution.
func (m *Machine) Run(maxInstrs int64) error {
	start := m.Prof.Instrs
	for !m.Halted {
		m.Step()
		if maxInstrs > 0 && m.Prof.Instrs-start >= maxInstrs {
			return fmt.Errorf("interp: exceeded %d instructions at P=%d", maxInstrs, m.P)
		}
	}
	return nil
}

func (m *Machine) effAddr(in tns.Instr) uint16 {
	var base uint16
	var disp = in.Disp
	switch in.Mode {
	case tns.ModeG:
		base = 0
	case tns.ModeL:
		base = m.L
	case tns.ModeLN:
		base = m.L - disp
		disp = 0
	case tns.ModeS:
		base = m.S - disp
		disp = 0
	}
	ea := base + disp
	if in.Ind {
		ea = m.Mem[ea]
	}
	if in.Idx {
		ea += m.pop()
	}
	return ea
}

// effByteAddr computes a byte address for LDB/STB: the direct or indirect
// cell yields a 16-bit byte address; indexing adds bytes. Without
// indirection, the direct cell address itself is converted to a byte
// address of its first byte (so LDB G+n addresses the high byte of word n).
func (m *Machine) effByteAddr(in tns.Instr) uint16 {
	var base uint16
	var disp = in.Disp
	switch in.Mode {
	case tns.ModeG:
		base = 0
	case tns.ModeL:
		base = m.L
	case tns.ModeLN:
		base = m.L - disp
		disp = 0
	case tns.ModeS:
		base = m.S - disp
		disp = 0
	}
	wa := base + disp
	var ba uint16
	if in.Ind {
		ba = m.Mem[wa]
	} else {
		ba = wa * 2
	}
	if in.Idx {
		ba += m.pop()
	}
	return ba
}

func (m *Machine) loadByte(ba uint16) uint16 {
	wd := m.Mem[ba>>1]
	if ba&1 == 0 {
		return wd >> 8
	}
	return wd & 0xFF
}

func (m *Machine) storeByte(ba uint16, v uint8) {
	wd := m.Mem[ba>>1]
	if ba&1 == 0 {
		wd = uint16(v)<<8 | wd&0x00FF
	} else {
		wd = wd&0xFF00 | uint16(v)
	}
	m.store(ba>>1, wd)
}

func (m *Machine) memOp(in tns.Instr) {
	switch in.Major {
	case tns.MajLoad:
		ea := m.effAddr(in)
		v := m.Mem[ea]
		m.push(v)
		m.setCC(int16(v))
	case tns.MajStor:
		// The index (if any) is above the value on the register stack at
		// the architectural level: the value is pushed first, then the
		// index. effAddr pops the index.
		ea := m.effAddr(in)
		m.store(ea, m.pop())
	case tns.MajLdb:
		ba := m.effByteAddr(in)
		v := m.loadByte(ba)
		m.push(v)
		m.setCC(int16(v))
	case tns.MajStb:
		ba := m.effByteAddr(in)
		m.storeByte(ba, uint8(m.pop()))
	case tns.MajLdd:
		ea := m.effAddr(in)
		m.push(m.Mem[ea])   // high word, deeper
		m.push(m.Mem[ea+1]) // low word, on top
		m.setCC32(int32(uint32(m.Mem[ea])<<16 | uint32(m.Mem[ea+1])))
	case tns.MajStd:
		ea := m.effAddr(in)
		lo := m.pop()
		hi := m.pop()
		m.store(ea, hi)
		m.store(ea+1, lo)
	}
}

func (m *Machine) controlOp(in tns.Instr, pc uint16) TransferKind {
	switch in.Ctl {
	case tns.CtlBUN:
		m.P = in.BranchTargetAddr(pc)
	case tns.CtlBCC:
		if m.ccMatches(in.Cond) {
			m.P = in.BranchTargetAddr(pc)
		}
	case tns.CtlBRZ:
		v := m.pop()
		if (v == 0) == (in.Cond == 0) {
			m.P = in.BranchTargetAddr(pc)
		}
	case tns.CtlPCAL:
		return m.call(m.Space, uint16(in.Target), pc)
	case tns.CtlSCAL:
		if m.Lib == nil {
			m.trap(tns.TrapBadPEP)
			return TransferNone
		}
		return m.call(SpaceLib, uint16(in.Target), pc)
	case tns.CtlEXIT:
		return m.exit(uint16(in.Target))
	}
	return TransferNone
}

func (m *Machine) ccMatches(cond uint8) bool {
	switch cond {
	case tns.CondL:
		return m.CC < 0
	case tns.CondE:
		return m.CC == 0
	case tns.CondLE:
		return m.CC <= 0
	case tns.CondG:
		return m.CC > 0
	case tns.CondNE:
		return m.CC != 0
	case tns.CondGE:
		return m.CC >= 0
	case tns.CondAlways:
		return true
	}
	return false
}

func (m *Machine) call(space Space, pep uint16, pc uint16) TransferKind {
	cf := m.CodeFile(space)
	if int(pep) >= len(cf.Procs) {
		m.trap(tns.TrapBadPEP)
		return TransferNone
	}
	if int(m.S)+tns.MarkerWords+32 >= len(m.Mem) {
		m.trap(tns.TrapStackOvf)
		return TransferNone
	}
	if m.PGO != nil {
		m.PGO.CallTarget(uint8(m.Space), pc, uint8(space), pep)
	}
	m.store(m.S+1, pc+1)
	m.store(m.S+2, m.packENV())
	m.store(m.S+3, m.L)
	m.S += tns.MarkerWords
	m.L = m.S
	m.Space = space
	m.P = cf.Procs[pep].Entry
	return TransferCall
}

func (m *Machine) exit(args uint16) TransferKind {
	retP := m.Mem[m.L-2]
	env := m.Mem[m.L-1]
	oldL := m.Mem[m.L]
	m.S = m.L - tns.MarkerWords - args
	m.L = oldL
	m.Space = UnpackENVSpace(env)
	// RP is NOT restored: the callee's register stack carries the function
	// result, which is the origin of the paper's RP puzzle. The marker ENV
	// holds the caller's RP as of the call, so the RP delta here is exactly
	// the dynamic result size the Accelerator had to guess statically.
	if m.PGO != nil && retP != HaltReturnP {
		m.PGO.ExitReturn(uint8(m.Space), retP, m.RP, uint8(env&7))
	}
	if retP == HaltReturnP {
		m.Halted = true
		return TransferNone
	}
	m.P = retP
	return TransferExit
}

func (m *Machine) pop32() uint32 {
	lo := m.pop()
	hi := m.pop()
	return uint32(hi)<<16 | uint32(lo)
}

func (m *Machine) push32(v uint32) {
	m.push(uint16(v >> 16))
	m.push(uint16(v))
}

func (m *Machine) specialOp(in tns.Instr, pc uint16) TransferKind {
	switch in.Sub {
	case tns.SubStack:
		return m.stackOp(in.Operand, pc)
	case tns.SubLDI:
		v := uint16(int16(int8(in.Operand)))
		m.push(v)
		m.setCC(int16(v))
	case tns.SubLDHI:
		m.setTop(m.top()<<8 | uint16(in.Operand))
	case tns.SubADDI:
		m.addWithFlags(m.pop(), uint16(int16(int8(in.Operand))), false)
	case tns.SubCMPI:
		m.setCC(compare16(int16(m.top()), int16(int8(in.Operand))))
	case tns.SubLDRA:
		m.push(m.R[in.Operand&7])
	case tns.SubSTAR:
		v := m.pop()
		m.R[in.Operand&7] = v
	case tns.SubSETRP:
		m.RP = in.Operand & 7
	case tns.SubADDS:
		m.S += uint16(int16(int8(in.Operand)))
		if int(m.S)+32 >= len(m.Mem) {
			m.trap(tns.TrapStackOvf)
		}
	case tns.SubSVC:
		m.svc(in.Operand)
	case tns.SubCASE:
		m.caseJump()
	case tns.SubSHL:
		v := m.top() << (in.Operand & 15)
		m.setTop(v)
		m.setCC(int16(v))
	case tns.SubSHRL:
		v := m.top() >> (in.Operand & 15)
		m.setTop(v)
		m.setCC(int16(v))
	case tns.SubSHRA:
		v := uint16(int16(m.top()) >> (in.Operand & 15))
		m.setTop(v)
		m.setCC(int16(v))
	case tns.SubANDI:
		v := m.top() & uint16(in.Operand)
		m.setTop(v)
		m.setCC(int16(v))
	case tns.SubORI:
		v := m.top() | uint16(in.Operand)
		m.setTop(v)
		m.setCC(int16(v))
	case tns.SubLDE:
		a := m.pop32()
		if a>>1 >= tns.DataWords {
			m.trap(tns.TrapAddress)
			return TransferNone
		}
		v := m.Mem[a>>1]
		m.push(v)
		m.setCC(int16(v))
	case tns.SubSTE:
		a := m.pop32()
		v := m.pop()
		if a>>1 >= tns.DataWords {
			m.trap(tns.TrapAddress)
			return TransferNone
		}
		m.store(uint16(a>>1), v)
	case tns.SubLDBE:
		a := m.pop32()
		if a>>1 >= tns.DataWords {
			m.trap(tns.TrapAddress)
			return TransferNone
		}
		wd := m.Mem[a>>1]
		var v uint16
		if a&1 == 0 {
			v = wd >> 8
		} else {
			v = wd & 0xFF
		}
		m.push(v)
		m.setCC(int16(v))
	case tns.SubSTBE:
		a := m.pop32()
		v := m.pop()
		if a>>1 >= tns.DataWords {
			m.trap(tns.TrapAddress)
			return TransferNone
		}
		wd := m.Mem[a>>1]
		if a&1 == 0 {
			wd = uint16(uint8(v))<<8 | wd&0x00FF
		} else {
			wd = wd&0xFF00 | uint16(uint8(v))
		}
		m.store(uint16(a>>1), wd)
	case tns.SubLGA:
		m.push(uint16(in.Operand))
	case tns.SubLLA:
		m.push(m.L + uint16(int16(int8(in.Operand))))
	case tns.SubDSHL:
		v := m.pop32() << (in.Operand & 31)
		m.push32(v)
		m.setCC32(int32(v))
	case tns.SubDSHRL:
		v := m.pop32() >> (in.Operand & 31)
		m.push32(v)
		m.setCC32(int32(v))
	case tns.SubADM:
		addr := m.pop()
		v := m.pop()
		old := m.Mem[addr]
		sum, k, ovf := add16(old, v)
		m.store(addr, sum)
		m.K = k
		m.setCC(int16(sum))
		m.setV(ovf)
	case tns.SubLDPL:
		m.push(uint16(in.Operand))
	case tns.SubSETT:
		m.T = in.Operand&1 != 0
	default:
		m.trap(tns.TrapBadOp)
	}
	return TransferNone
}

func (m *Machine) caseJump() {
	code := m.code()
	caseA := m.P - 1 // Step already advanced past the CASE instruction
	idx := int16(m.pop())
	n := code[m.P]
	tableBase := m.P + 1
	after := tableBase + n
	if idx < 0 || uint16(idx) >= n {
		m.P = after
	} else {
		m.P = code[tableBase+uint16(idx)]
	}
	if m.PGO != nil {
		m.PGO.CaseTarget(uint8(m.Space), caseA, m.P)
	}
}

func (m *Machine) svc(n uint8) {
	switch n {
	case tns.SvcHalt:
		m.ExitStatus = m.pop()
		m.Halted = true
	case tns.SvcPutchar:
		m.Console.WriteByte(byte(m.pop()))
	case tns.SvcPutnum:
		fmt.Fprintf(&m.Console, "%d", int16(m.pop()))
	case tns.SvcPuts:
		count := m.pop()
		ba := m.pop()
		for i := uint16(0); i < count; i++ {
			m.Console.WriteByte(byte(m.loadByte(ba + i)))
		}
		m.Prof.LongUnits += int64(count)
	default:
		m.trap(tns.TrapBadSVC)
	}
}

func compare16(a, b int16) int16 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func add16(a, b uint16) (sum uint16, carry, overflow bool) {
	s := uint32(a) + uint32(b)
	sum = uint16(s)
	carry = s > 0xFFFF
	overflow = (a^sum)&(b^sum)&0x8000 != 0
	return
}

func sub16(a, b uint16) (diff uint16, carry, overflow bool) {
	d := uint32(a) - uint32(b)
	diff = uint16(d)
	carry = a >= b // K = no borrow
	overflow = (a^b)&(a^diff)&0x8000 != 0
	return
}

func (m *Machine) addWithFlags(a, b uint16, sub bool) {
	var sum uint16
	var k, v bool
	if sub {
		sum, k, v = sub16(a, b)
	} else {
		sum, k, v = add16(a, b)
	}
	m.push(sum)
	m.K = k
	m.setCC(int16(sum))
	m.setV(v)
}
