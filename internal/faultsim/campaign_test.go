package faultsim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tnsr/internal/store"
)

// TestFaultCampaignStorage runs 120 seeded fault schedules against the
// wrapped store and holds one line: a Get that succeeds returns EXACTLY the
// bytes of the last successful Put — under injected I/O errors, ENOSPC,
// torn-write-then-crash debris, any mix. Failed operations are typed and
// harmless; after the storm, a sweep plus reopen finds every successful
// Put intact and every torn write invisible. Wrong bytes anywhere fail the
// campaign; a panic fails it louder.
func TestFaultCampaignStorage(t *testing.T) {
	const (
		seeds     = 120
		opsPerRun = 60
		keySpace  = 6
	)
	// Three fault climates, cycled by seed: drizzle, storm, torn-heavy.
	climates := []StoreOpts{
		{PIOErr: 0.05, PNoSpace: 0.02, PTorn: 0.05},
		{PIOErr: 0.25, PNoSpace: 0.10, PTorn: 0.15},
		{PIOErr: 0.05, PNoSpace: 0.30, PTorn: 0.35},
	}
	var injected, survived int64
	for seed := int64(0); seed < seeds; seed++ {
		opts := climates[seed%int64(len(climates))]
		opts.Seed = seed
		dir := t.TempDir()
		inner, err := store.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		fs := WrapStore(inner, opts)

		// model holds the last successfully-Put value per key — the only
		// thing a successful Get is ever allowed to return.
		model := map[string][]byte{}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for op := 0; op < opsPerRun; op++ {
			key := fmt.Sprintf("%016x", rng.Intn(keySpace))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // Put
				val := []byte(fmt.Sprintf("seed%d-op%d-%s", seed, op, key))
				if err := fs.Put(key, val); err != nil {
					if !IsInjected(err) {
						t.Fatalf("seed %d op %d: non-injected Put error: %v", seed, op, err)
					}
					injected++
					break // old value (or absence) must still hold
				}
				model[key] = val
			case 4, 5, 6, 7: // Get
				got, err := fs.Get(key)
				want, exists := model[key]
				switch {
				case err == nil:
					if !exists {
						t.Fatalf("seed %d op %d: Get(%s) returned bytes for a never-stored key", seed, op, key)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("seed %d op %d: Get(%s) wrong bytes:\ngot  %q\nwant %q",
							seed, op, key, got, want)
					}
					survived++
				case errors.Is(err, store.ErrNotExist):
					if exists {
						t.Fatalf("seed %d op %d: Get(%s) lost a successful Put", seed, op, key)
					}
				case IsInjected(err):
					injected++
				default:
					t.Fatalf("seed %d op %d: non-injected Get error: %v", seed, op, err)
				}
			case 8: // Delete
				if err := fs.Delete(key); err != nil {
					if !IsInjected(err) {
						t.Fatalf("seed %d op %d: non-injected Delete error: %v", seed, op, err)
					}
					injected++
					break
				}
				delete(model, key)
			case 9: // List: every listed key must be a model key (debris invisible)
				entries, err := fs.List()
				if err != nil {
					if !IsInjected(err) {
						t.Fatalf("seed %d op %d: non-injected List error: %v", seed, op, err)
					}
					injected++
					break
				}
				for _, e := range entries {
					if _, ok := model[e.Key]; !ok {
						t.Fatalf("seed %d op %d: List leaked %q (debris or lost delete)", seed, op, e.Key)
					}
				}
				if len(entries) != len(model) {
					t.Fatalf("seed %d op %d: List has %d entries, model %d", seed, op, len(entries), len(model))
				}
			}
		}

		// The crash-restart epilogue: sweep the debris, reopen fault-free,
		// and require every successful Put durable and byte-exact.
		if _, err := store.Sweep(fs); err != nil {
			t.Fatalf("seed %d: sweep: %v", seed, err)
		}
		reopened, err := store.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for key, want := range model {
			got, err := reopened.Get(key)
			if err != nil {
				t.Fatalf("seed %d: reopen Get(%s): %v", seed, key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: reopen Get(%s) wrong bytes", seed, key)
			}
		}
		entries, err := reopened.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != len(model) {
			t.Fatalf("seed %d: reopened store has %d entries, want %d", seed, len(entries), len(model))
		}
	}
	if injected == 0 {
		t.Error("campaign injected zero faults — the climates are miscalibrated")
	}
	if survived == 0 {
		t.Error("campaign observed zero successful reads — the climates are miscalibrated")
	}
	t.Logf("storage campaign: %d seeds, %d injected faults, %d verified reads", int(seeds), injected, survived)
}
