package faultsim

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"tnsr/internal/store"
)

// StoreOpts configures the storage fault injector. All-zero opts mean pure
// pass-through: every operation forwards to the inner store untouched (the
// storetest contract runs against that mode).
type StoreOpts struct {
	// Seed pins the decision stream.
	Seed int64

	// PIOErr is the probability any operation fails with an injected I/O
	// error (the disk said no: medium error, permission flap, …).
	PIOErr float64

	// PNoSpace is the probability a Put fails with an injected ENOSPC.
	// Nothing is written; the entry's previous value (if any) survives.
	PNoSpace float64

	// PTorn is the probability a Put tears: the writer "crashes" after
	// creating its temporary but before the rename, leaving real ".tmp-"
	// debris in the owning directory and failing the Put. The entry's
	// previous value survives — exactly what the atomic-write discipline
	// guarantees for a real mid-write crash.
	PTorn float64

	// MaxLatency, when > 0, stalls every operation by a uniform duration
	// in [0, MaxLatency) before it runs (slow disk, contended volume).
	MaxLatency time.Duration

	// SleepFn replaces time.Sleep for latency injection (tests run
	// schedules without wall-clock time). Nil means time.Sleep.
	SleepFn func(time.Duration)
}

// StoreCounts is a snapshot of what the injector did.
type StoreCounts struct {
	Ops     int64 // operations that reached the wrapper
	IOErrs  int64 // injected I/O errors
	NoSpace int64 // injected ENOSPC failures
	Torn    int64 // injected torn-write-then-crash Puts
	Delays  int64 // operations stalled by injected latency
}

// Store wraps a store.Storage with seeded fault injection. It forwards the
// optional raw-file surfaces (Roots, Path, Sweep) when the inner store has
// them, so crash-recovery tooling sees through the wrapper.
type Store struct {
	inner store.Storage
	opts  StoreOpts
	dice  *dice

	ops, ioErrs, noSpace, torn, delays atomic.Int64
}

// WrapStore builds the injector around inner.
func WrapStore(inner store.Storage, opts StoreOpts) *Store {
	return &Store{inner: inner, opts: opts, dice: newDice(opts.Seed)}
}

// Counts snapshots the injector's activity.
func (s *Store) Counts() StoreCounts {
	return StoreCounts{
		Ops:     s.ops.Load(),
		IOErrs:  s.ioErrs.Load(),
		NoSpace: s.noSpace.Load(),
		Torn:    s.torn.Load(),
		Delays:  s.delays.Load(),
	}
}

// enter runs the per-operation faults common to every method: latency,
// then an injected I/O error.
func (s *Store) enter(op string) error {
	s.ops.Add(1)
	if d := s.dice.within(s.opts.MaxLatency); d > 0 {
		s.delays.Add(1)
		if s.opts.SleepFn != nil {
			s.opts.SleepFn(d)
		} else {
			time.Sleep(d)
		}
	}
	if s.dice.roll(s.opts.PIOErr) {
		s.ioErrs.Add(1)
		return errf("%s: input/output error", op)
	}
	return nil
}

func (s *Store) Get(key string) ([]byte, error) {
	if err := s.enter("get"); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

func (s *Store) Put(key string, data []byte) error {
	if err := s.enter("put"); err != nil {
		return err
	}
	if s.dice.roll(s.opts.PNoSpace) {
		s.noSpace.Add(1)
		return errf("put %s: no space left on device", key)
	}
	if s.dice.roll(s.opts.PTorn) {
		s.torn.Add(1)
		s.plantTorn(key, data)
		return errf("put %s: crashed mid-write", key)
	}
	return s.inner.Put(key, data)
}

// plantTorn leaves the debris a mid-write crash would: a ".tmp-" file with
// a partial payload in the directory that owns key. Best-effort — if the
// inner store exposes no directories (a future object-store backend), the
// Put still fails, there's just nothing on disk to sweep.
func (s *Store) plantTorn(key string, data []byte) {
	dir := ""
	if p, ok := s.inner.(interface{ Path(string) string }); ok {
		dir = filepath.Dir(p.Path(key))
	} else if r, ok := s.inner.(interface{ Roots() []string }); ok {
		if roots := r.Roots(); len(roots) > 0 {
			dir = roots[s.dice.index(len(roots))]
		}
	}
	if dir == "" {
		return
	}
	cut := len(data) / 2
	name := filepath.Join(dir, fmt.Sprintf(".tmp-torn%d", s.torn.Load()))
	os.WriteFile(name, data[:cut], 0o666)
}

func (s *Store) Delete(key string) error {
	if err := s.enter("delete"); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

func (s *Store) Touch(key string) error {
	if err := s.enter("touch"); err != nil {
		return err
	}
	return s.inner.Touch(key)
}

func (s *Store) List() ([]store.Entry, error) {
	if err := s.enter("list"); err != nil {
		return nil, err
	}
	return s.inner.List()
}

// Roots forwards the inner store's backing directories (nil when it has
// none), so debris-planting tests see through the wrapper.
func (s *Store) Roots() []string {
	if r, ok := s.inner.(interface{ Roots() []string }); ok {
		return r.Roots()
	}
	return nil
}

// Path forwards the inner store's key→file mapping ("" when it has none).
func (s *Store) Path(key string) string {
	if p, ok := s.inner.(interface{ Path(string) string }); ok {
		return p.Path(key)
	}
	return ""
}

// Sweep forwards crash-debris recovery to the inner store. Sweep itself is
// never fault-injected: it models the recovery path, not the failure path.
func (s *Store) Sweep() (int, error) {
	return store.Sweep(s.inner)
}
