package faultsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tnsr/internal/store"
	"tnsr/internal/store/storetest"
)

// TestPassThroughContract: with an all-zero plan the wrapper must be
// observationally identical to the store it wraps — the full storage
// contract runs against it over both filesystem implementations.
func TestPassThroughContract(t *testing.T) {
	t.Run("dir", func(t *testing.T) {
		storetest.Contract(t, func(t *testing.T) store.Storage {
			d, err := store.OpenDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return WrapStore(d, StoreOpts{})
		})
	})
	t.Run("sharded-3", func(t *testing.T) {
		storetest.Contract(t, func(t *testing.T) store.Storage {
			s, err := store.OpenSharded(t.TempDir(), 3)
			if err != nil {
				t.Fatal(err)
			}
			return WrapStore(s, StoreOpts{})
		})
	})
}

func openDir(t *testing.T) *store.Dir {
	t.Helper()
	d, err := store.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStoreInjectsTypedIOError(t *testing.T) {
	inner := openDir(t)
	if err := inner.Put("00aa00aa00aa00aa.tns", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fs := WrapStore(inner, StoreOpts{Seed: 1, PIOErr: 1})
	_, err := fs.Get("00aa00aa00aa00aa.tns")
	if !IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if err := fs.Put("00aa00aa00aa00aa.tns", []byte("v2")); !IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The inner store is untouched by the failed operations.
	got, err := inner.Get("00aa00aa00aa00aa.tns")
	if err != nil || string(got) != "v1" {
		t.Fatalf("inner store disturbed: %q, %v", got, err)
	}
	if c := fs.Counts(); c.IOErrs != 2 || c.Ops != 2 {
		t.Errorf("counts %+v", c)
	}
}

func TestStoreNoSpaceKeepsOldValue(t *testing.T) {
	inner := openDir(t)
	fs := WrapStore(inner, StoreOpts{Seed: 2, PNoSpace: 1})
	if err := inner.Put("00bb00bb00bb00bb.tns", []byte("old")); err != nil {
		t.Fatal(err)
	}
	err := fs.Put("00bb00bb00bb00bb.tns", []byte("new"))
	if !IsInjected(err) || !strings.Contains(err.Error(), "no space") {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	got, _ := fs.Get("00bb00bb00bb00bb.tns")
	if string(got) != "old" {
		t.Fatalf("old value lost: %q", got)
	}
}

// TestTornPutCrashRecovery is the storage half of the crash story: a torn
// Put fails the writer, leaves real debris, never corrupts the old value,
// and Sweep (the restart path) removes the debris.
func TestTornPutCrashRecovery(t *testing.T) {
	inner := openDir(t)
	fs := WrapStore(inner, StoreOpts{Seed: 3, PTorn: 1})
	if err := inner.Put("00cc00cc00cc00cc.tns", []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("00cc00cc00cc00cc.tns", bytes.Repeat([]byte("x"), 64)); !IsInjected(err) {
		t.Fatalf("want injected crash, got %v", err)
	}
	// Debris is on disk but invisible to every read path.
	debris := 0
	ents, err := os.ReadDir(inner.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			debris++
		}
	}
	if debris == 0 {
		t.Fatal("torn Put left no debris")
	}
	if got, err := fs.Get("00cc00cc00cc00cc.tns"); err != nil || string(got) != "survivor" {
		t.Fatalf("old value after torn write: %q, %v", got, err)
	}
	listed, err := fs.List()
	if err != nil || len(listed) != 1 {
		t.Fatalf("List after torn write: %+v, %v", listed, err)
	}
	// Restart: sweep reclaims exactly the debris.
	removed, err := fs.Sweep()
	if err != nil || removed != debris {
		t.Fatalf("Sweep removed %d (want %d), err %v", removed, debris, err)
	}
}

func TestStoreLatencyUsesSleepFn(t *testing.T) {
	var slept atomic.Int64
	fs := WrapStore(openDir(t), StoreOpts{
		Seed: 4, MaxLatency: 50 * time.Millisecond,
		SleepFn: func(d time.Duration) { slept.Add(int64(d)) },
	})
	for i := 0; i < 20; i++ {
		fs.List()
	}
	if slept.Load() == 0 {
		t.Fatal("no latency injected across 20 ops")
	}
	if c := fs.Counts(); c.Delays == 0 {
		t.Errorf("counts %+v", c)
	}
}

// TestStoreDeterministicSchedule: the same seed over the same serialized
// operation sequence injects the identical fault pattern.
func TestStoreDeterministicSchedule(t *testing.T) {
	run := func(seed int64) string {
		fs := WrapStore(openDir(t), StoreOpts{Seed: seed, PIOErr: 0.3})
		var pat []byte
		for i := 0; i < 40; i++ {
			if _, err := fs.List(); err != nil {
				pat = append(pat, 'x')
			} else {
				pat = append(pat, '.')
			}
		}
		return string(pat)
	}
	if a, b := run(99), run(99); a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a, c := run(99), run(100); a == c {
		t.Fatal("distinct seeds drew identical schedules (suspicious)")
	}
}

// echoServer counts hits and echoes the request body (or a fixed payload
// for GETs).
func echoServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		b, _ := io.ReadAll(r.Body)
		if len(b) == 0 {
			b = []byte("payload-0123456789abcdef")
		}
		w.Write(b)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportPassThrough(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	c := &http.Client{Transport: WrapTransport(srv.Client().Transport, TransportOpts{})}
	resp, err := c.Post(srv.URL, "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "hello" || hits.Load() != 1 {
		t.Fatalf("body %q, hits %d", b, hits.Load())
	}
}

func TestTransportReset(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	c := &http.Client{Transport: WrapTransport(srv.Client().Transport, TransportOpts{PReset: 1})}
	_, err := c.Get(srv.URL)
	if err == nil || !IsInjected(errors.Unwrap(err)) && !IsInjected(err) {
		t.Fatalf("want injected reset, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatal("reset request reached the server")
	}
}

func TestTransportTimeoutAfterExecution(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	tr := WrapTransport(srv.Client().Transport, TransportOpts{PTimeout: 1})
	_, err := tr.RoundTrip(mustReq(t, srv.URL))
	if err == nil {
		t.Fatal("want timeout")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
	if !IsInjected(err) {
		t.Fatalf("timeout not marked injected: %v", err)
	}
	// The ambiguous failure: the server DID execute the request.
	if hits.Load() != 1 {
		t.Fatalf("server hits %d, want 1", hits.Load())
	}
}

func TestTransportSynthetic5xxAnd429(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	tr := WrapTransport(srv.Client().Transport, TransportOpts{P5xx: 1})
	resp, err := tr.RoundTrip(mustReq(t, srv.URL))
	if err != nil || resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("resp %v err %v", resp, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	tr = WrapTransport(srv.Client().Transport, TransportOpts{P429: 1, Retry429After: 2})
	resp, err = tr.RoundTrip(mustReq(t, srv.URL))
	if err != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("resp %v err %v", resp, err)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q", ra)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 0 {
		t.Fatal("synthetic responses reached the server")
	}
}

func TestTransportTruncateAndCorrupt(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	const want = "payload-0123456789abcdef"

	tr := WrapTransport(srv.Client().Transport, TransportOpts{PTruncate: 1})
	resp, err := tr.RoundTrip(mustReq(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(b) != len(want)/2 || !strings.HasPrefix(want, string(b)) {
		t.Fatalf("truncated body %q", b)
	}

	tr = WrapTransport(srv.Client().Transport, TransportOpts{Seed: 5, PCorrupt: 1})
	resp, err = tr.RoundTrip(mustReq(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(b) != len(want) || string(b) == want {
		t.Fatalf("corrupt body %q (len %d)", b, len(b))
	}
}

func TestTransportDuplicateDelivery(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	c := &http.Client{Transport: WrapTransport(srv.Client().Transport, TransportOpts{PDuplicate: 1})}
	resp, err := c.Post(srv.URL, "text/plain", strings.NewReader("dup-me"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "dup-me" {
		t.Fatalf("second delivery body %q", b)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits %d, want 2 (duplicate delivery)", hits.Load())
	}
}

func mustReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}
