package faultsim

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// TransportOpts configures the network fault injector. All-zero opts mean
// pure pass-through. The injector models the failure classes a client must
// survive without ever serving wrong bytes:
//
//   - connection reset / timeout: the request may or may not have reached
//     the server — the client cannot know, so idempotency is on trial;
//   - synthetic 5xx / 429: the server refused before doing work;
//   - truncated / corrupted body: the bytes arrived damaged — the strict
//     parsers and checksums must refuse them, and the client must treat
//     the refusal as transient;
//   - duplicate delivery: the request executes twice (a retransmit the
//     server saw both copies of) — dedup by key must make it harmless.
type TransportOpts struct {
	// Seed pins the decision stream.
	Seed int64

	// PReset is the probability a request fails with a connection reset
	// BEFORE reaching the server (nothing executed).
	PReset float64

	// PTimeout is the probability a request times out AFTER the server
	// executed it (response lost — the ambiguous failure).
	PTimeout float64

	// P5xx is the probability the injector answers with a synthetic 502
	// without forwarding the request.
	P5xx float64

	// P429 is the probability the injector answers with a synthetic 429
	// carrying a Retry-After, without forwarding the request.
	P429 float64

	// Retry429After is the Retry-After seconds on injected 429s (0 omits
	// the header).
	Retry429After int

	// PTruncate is the probability a successful response body is cut in
	// half before the client sees it.
	PTruncate float64

	// PCorrupt is the probability one byte of a successful response body
	// is flipped before the client sees it.
	PCorrupt float64

	// PDuplicate is the probability the request is delivered twice (both
	// executions reach the server; the client sees the second response).
	// Requests whose body cannot be replayed are delivered once.
	PDuplicate float64

	// MaxLatency, when > 0, stalls each request by a uniform duration in
	// [0, MaxLatency).
	MaxLatency time.Duration

	// SleepFn replaces time.Sleep for latency injection. Nil means
	// time.Sleep.
	SleepFn func(time.Duration)
}

// TransportCounts is a snapshot of what the injector did.
type TransportCounts struct {
	Requests   int64 // requests that entered the wrapper
	Resets     int64 // injected connection resets (server never saw it)
	Timeouts   int64 // injected timeouts (server DID see it)
	Syn5xx     int64 // synthetic 502s
	Syn429     int64 // synthetic 429s
	Truncated  int64 // bodies cut in half
	Corrupted  int64 // bodies with a flipped byte
	Duplicated int64 // requests delivered twice
	Delays     int64 // requests stalled by injected latency
}

// Transport wraps an http.RoundTripper with seeded fault injection.
type Transport struct {
	next http.RoundTripper
	opts TransportOpts
	dice *dice

	requests, resets, timeouts           atomic.Int64
	syn5xx, syn429, truncated, corrupted atomic.Int64
	duplicated, delays                   atomic.Int64
}

// WrapTransport builds the injector in front of next (nil means
// http.DefaultTransport).
func WrapTransport(next http.RoundTripper, opts TransportOpts) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next, opts: opts, dice: newDice(opts.Seed)}
}

// Counts snapshots the injector's activity.
func (t *Transport) Counts() TransportCounts {
	return TransportCounts{
		Requests:   t.requests.Load(),
		Resets:     t.resets.Load(),
		Timeouts:   t.timeouts.Load(),
		Syn5xx:     t.syn5xx.Load(),
		Syn429:     t.syn429.Load(),
		Truncated:  t.truncated.Load(),
		Corrupted:  t.corrupted.Load(),
		Duplicated: t.duplicated.Load(),
		Delays:     t.delays.Load(),
	}
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	if d := t.dice.within(t.opts.MaxLatency); d > 0 {
		t.delays.Add(1)
		if t.opts.SleepFn != nil {
			t.opts.SleepFn(d)
		} else {
			time.Sleep(d)
		}
	}

	// Pre-delivery faults: the server never sees the request.
	if t.dice.roll(t.opts.PReset) {
		t.resets.Add(1)
		drain(req)
		return nil, errf("%s %s: connection reset by peer", req.Method, req.URL.Path)
	}
	if t.dice.roll(t.opts.P5xx) {
		t.syn5xx.Add(1)
		drain(req)
		return synthetic(req, http.StatusBadGateway, "faultsim: injected bad gateway", nil), nil
	}
	if t.dice.roll(t.opts.P429) {
		t.syn429.Add(1)
		drain(req)
		hdr := http.Header{}
		if t.opts.Retry429After > 0 {
			hdr.Set("Retry-After", strconv.Itoa(t.opts.Retry429After))
		}
		return synthetic(req, http.StatusTooManyRequests, "faultsim: injected rate limit", hdr), nil
	}

	// Duplicate delivery: execute twice when the body can be replayed.
	if t.dice.roll(t.opts.PDuplicate) && replayable(req) {
		t.duplicated.Add(1)
		first, err := t.next.RoundTrip(cloneWithBody(req))
		if err == nil {
			// The "lost" first response: fully received, discarded.
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		rewind(req)
	}

	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	// Post-delivery faults: the server executed the request, the client
	// doesn't (correctly) see the answer.
	if t.dice.roll(t.opts.PTimeout) {
		t.timeouts.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &injected{msg: "faultsim: request timed out awaiting response", timeout: true}
	}
	if t.dice.roll(t.opts.PTruncate) {
		t.truncated.Add(1)
		return damage(resp, func(b []byte) []byte { return b[:len(b)/2] })
	}
	if t.dice.roll(t.opts.PCorrupt) {
		t.corrupted.Add(1)
		d := t.dice
		return damage(resp, func(b []byte) []byte {
			if len(b) == 0 {
				return b
			}
			b[d.index(len(b))] ^= 0x41
			return b
		})
	}
	return resp, nil
}

// drain consumes and closes a request body that will never be delivered,
// matching real transport behavior.
func drain(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// replayable reports whether the request can be delivered twice.
func replayable(req *http.Request) bool {
	return req.Body == nil || req.GetBody != nil
}

// cloneWithBody deep-copies req with a fresh body for the extra delivery.
func cloneWithBody(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			c.Body = http.NoBody
		} else {
			c.Body = body
		}
	}
	return c
}

// rewind restores req's body after the first delivery consumed it.
func rewind(req *http.Request) {
	if req.GetBody == nil {
		return
	}
	if body, err := req.GetBody(); err == nil {
		req.Body = body
	}
}

// synthetic builds an injector-originated response.
func synthetic(req *http.Request, status int, body string, hdr http.Header) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	hdr.Set("Content-Type", "text/plain; charset=utf-8")
	return &http.Response{
		StatusCode:    status,
		Status:        http.StatusText(status),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// damage rewrites resp's body through f, preserving the original
// Content-Length header so a truncation looks like a cut connection, not a
// shorter answer.
func damage(resp *http.Response, f func([]byte) []byte) (*http.Response, error) {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(f(b)))
	return resp, nil
}
