// Package faultsim injects deterministic, seeded faults into the service
// tier's two boundaries — store.Storage and http.RoundTripper — so the
// campaign tests can prove the standing invariant under hostile conditions:
// every machine either serves bytes byte-identical to local translation or
// takes a typed degrade; never wrong output, never a panic.
//
// Determinism: every injector draws from one seeded stream under a mutex,
// so a schedule is reproducible given the seed and the serialized order of
// operations. Concurrent campaigns don't reproduce exact interleavings (the
// race itself is nondeterministic) — they reproduce the fault *mix*, which
// is what the invariant-style assertions need.
//
// Fidelity: every injected error wraps ErrInjected, so a test can tell an
// injected fault from a real bug with errors.Is. In pass-through mode (all
// probabilities zero) both wrappers are observationally identical to what
// they wrap: the Store passes the storetest contract, the Transport
// forwards requests untouched.
package faultsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the marker every injected fault wraps: errors.Is(err,
// ErrInjected) separates simulated failures from real ones.
var ErrInjected = errors.New("faultsim: injected fault")

// IsInjected reports whether err (or anything it wraps) was injected by
// this package.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// injected is a typed fault. It satisfies net.Error-style Timeout probing
// when built as a timeout, so http clients classify it as they would a real
// deadline miss.
type injected struct {
	msg     string
	timeout bool
}

func (e *injected) Error() string   { return e.msg }
func (e *injected) Timeout() bool   { return e.timeout }
func (e *injected) Temporary() bool { return true }
func (e *injected) Unwrap() error   { return ErrInjected }

func errf(format string, args ...any) error {
	return &injected{msg: "faultsim: " + fmt.Sprintf(format, args...)}
}

// dice is the shared seeded decision stream. All draws are serialized so a
// seed maps to one reproducible sequence of decisions.
type dice struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newDice(seed int64) *dice {
	return &dice{rng: rand.New(rand.NewSource(seed))}
}

// roll reports true with probability p.
func (d *dice) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Float64() < p
}

// within draws a uniform duration in [0, max).
func (d *dice) within(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.rng.Int63n(int64(max)))
}

// index draws a uniform int in [0, n).
func (d *dice) index(n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Intn(n)
}
