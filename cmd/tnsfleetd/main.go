// Command tnsfleetd is the fleet run-host: it simulates N concurrent
// machines (goroutine-per-machine), each running the ET1 transaction
// workload in mixed interpreter/RISC mode against one shared accelerated
// codefile, and aggregates their telemetry into a single fleet report —
// mode residency, escape histogram, throughput and latency percentiles.
//
// Usage:
//
//	tnsfleetd -machines 1000 -addr :9912
//
//	-machines n     fleet size (default 128)
//	-txns n         ET1 transactions per machine per round (default 2)
//	-rounds n       fleet rounds; >1 closes the PGO loop between rounds
//	-workload w     program every machine runs (default "et1")
//	-level l        acceleration level: stmtdebug, default or fast
//	-rate tps       per-machine open-loop arrival rate (default 15, the
//	                paper's ET1 rating); 0 means back-to-back
//	-think s        think time appended to every arrival gap, seconds
//	-burst b        arrival burstiness: 1 Poisson, >1 bursty, <1 smoother
//	-seed n         run seed; same seed, same fleet report
//	-chaos n        run the n lowest-ID machines on chaos-mutated images
//	-chaos-seed n   mutant selection seed (independent of -seed)
//	-budget n       per-machine instruction budget per round
//	-slots n        resident simulator-image bound (0 = auto)
//	-workers n      translation worker count (0 = translator default)
//	-cache dir      persistent retranslation cache directory
//	-addr host:port serve /metrics, /healthz and /report; with -addr the
//	                host keeps serving after the run so collectors can
//	                scrape the final state (empty = run once and exit)
//	-profile-url u  close the PGO loop through a remote tnsprofd at u
//	-profile-token t  bearer token for -profile-url
//	-profile-dir d  mount an in-process profile service over store d
//	                instead; every machine gets its own synthetic client
//	                address, so per-client rate limiting is exercised
//	-xlate-url u    send the host's translations to a tnsxlated at u,
//	                degrading to local translation on any failure
//	-xlate-token t  bearer token for -xlate-url
//	-json           print the final report as JSON instead of text
//	-prom           print the final report in Prometheus text format
//
// Endpoints:
//
//	GET /metrics   Prometheus text exposition of the latest completed
//	               round (503 until the first round lands)
//	GET /healthz   liveness: "ok running" during the run, "ok done" after
//	GET /report    the full fleet report as JSON (schema
//	               tnsr/fleet-report/v1)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/fleet"
	"tnsr/internal/profsrv"
	"tnsr/internal/tcache"
	"tnsr/internal/xlate"
)

func parseLevel(s string) (codefile.AccelLevel, error) {
	switch strings.ToLower(s) {
	case "stmtdebug", "stmt-debug", "debug":
		return codefile.LevelStmtDebug, nil
	case "default", "":
		return codefile.LevelDefault, nil
	case "fast":
		return codefile.LevelFast, nil
	}
	return 0, fmt.Errorf("unknown level %q (want stmtdebug, default or fast)", s)
}

// holder is the report the HTTP surface serves, swapped in when the run
// completes. The zero state (nil report) reads as "still running".
type holder struct {
	mu     sync.Mutex
	report *fleet.FleetReport
	err    error
}

func (h *holder) set(fr *fleet.FleetReport, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.report, h.err = fr, err
}

func (h *holder) get() (*fleet.FleetReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.report, h.err
}

func main() {
	machines := flag.Int("machines", 128, "fleet size")
	txns := flag.Int("txns", fleet.DefaultTxnsPerMachine, "ET1 transactions per machine per round")
	rounds := flag.Int("rounds", 1, "fleet rounds (>1 closes the PGO loop)")
	workload := flag.String("workload", fleet.DefaultWorkload, "program every machine runs")
	levelFlag := flag.String("level", "default", "acceleration level: stmtdebug, default or fast")
	rate := flag.Float64("rate", fleet.DefaultRateTPS, "per-machine arrival rate, txn/s (0 = back-to-back)")
	think := flag.Float64("think", 0, "think time added to every arrival gap, seconds")
	burst := flag.Float64("burst", 1, "arrival burstiness (1 = Poisson)")
	seed := flag.Int64("seed", 1, "run seed")
	chaosN := flag.Int("chaos", 0, "machines running chaos-mutated images")
	chaosSeed := flag.Int64("chaos-seed", 1, "mutant selection seed")
	budget := flag.Int64("budget", fleet.DefaultBudget, "per-machine instruction budget per round")
	slots := flag.Int("slots", 0, "resident simulator-image bound (0 = auto)")
	workers := flag.Int("workers", 0, "translation workers (0 = default)")
	cacheDir := flag.String("cache", "", "persistent retranslation cache directory")
	addr := flag.String("addr", "", "serve /metrics, /healthz, /report here (empty = run once and exit)")
	profURL := flag.String("profile-url", "", "remote tnsprofd base URL for the PGO loop")
	profToken := flag.String("profile-token", "", "bearer token for -profile-url / -profile-dir")
	profDir := flag.String("profile-dir", "", "mount an in-process profile service over this store")
	xlateURL := flag.String("xlate-url", "", "remote tnsxlated base URL for the host's translations")
	xlateToken := flag.String("xlate-token", "", "bearer token for -xlate-url")
	jsonOut := flag.Bool("json", false, "print the final report as JSON")
	promOut := flag.Bool("prom", false, "print the final report in Prometheus text format")
	quiet := flag.Bool("quiet", false, "suppress per-round progress lines")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tnsfleetd [flags]")
		os.Exit(2)
	}

	lvl, err := parseLevel(*levelFlag)
	if err != nil {
		log.Fatalf("tnsfleetd: %v", err)
	}

	cfg := fleet.Config{
		Machines:       *machines,
		TxnsPerMachine: *txns,
		Rounds:         *rounds,
		Level:          lvl,
		Workers:        *workers,
		Seed:           *seed,
		Budget:         *budget,
		RunSlots:       *slots,
		Traffic: fleet.Traffic{
			RateTPS:      *rate,
			ThinkSeconds: *think,
			Burstiness:   *burst,
		},
		ChaosMachines: *chaosN,
		ChaosSeed:     *chaosSeed,
		Workload:      *workload,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			log.Printf("tnsfleetd: "+format, args...)
		}
	}

	switch {
	case *profDir != "":
		store, err := profsrv.OpenStore(*profDir)
		if err != nil {
			log.Fatalf("tnsfleetd: %v", err)
		}
		cfg.InProc = profsrv.New(profsrv.Config{
			Store: store, Token: *profToken,
			RatePerSec: 200, RateBurst: 50,
		})
		cfg.InProcToken = *profToken
	case *profURL != "":
		cfg.Source = profsrv.NewClient(*profURL, *profToken)
	}

	if *xlateURL != "" {
		// Remote translation with local fallback: any service failure
		// degrades to translating on this host — byte-identical by the
		// determinism contract, so only availability changes, not the image.
		cfg.Xlate = xlate.NewClient(*xlateURL, *xlateToken)
	}

	if *cacheDir != "" {
		c, err := tcache.Open(*cacheDir)
		if err != nil {
			log.Fatalf("tnsfleetd: %v", err)
		}
		cfg.Cache = c
	}

	var h holder
	if *addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fr, err := h.get()
			switch {
			case err != nil:
				http.Error(w, "run failed: "+err.Error(), http.StatusInternalServerError)
			case fr == nil:
				fmt.Fprintln(w, "ok running")
			default:
				fmt.Fprintln(w, "ok done")
			}
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			fr, err := h.get()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if fr == nil || fr.Final() == nil {
				http.Error(w, "no completed round yet", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fr.WritePrometheus(w)
		})
		mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
			fr, err := h.get()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if fr == nil {
				http.Error(w, "run in progress", http.StatusServiceUnavailable)
				return
			}
			data, err := fr.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			fmt.Fprintln(w)
		})
		hs := &http.Server{
			Addr:              *addr,
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := hs.ListenAndServe(); err != http.ErrServerClosed {
				log.Fatalf("tnsfleetd: %v", err)
			}
		}()
		log.Printf("tnsfleetd: serving /metrics, /healthz, /report on %s", *addr)
	}

	fr, err := fleet.Run(cfg)
	h.set(fr, err)
	if err != nil {
		log.Fatalf("tnsfleetd: %v", err)
	}
	if err := fr.Validate(); err != nil {
		log.Fatalf("tnsfleetd: report invalid: %v", err)
	}

	switch {
	case *jsonOut:
		data, err := fr.JSON()
		if err != nil {
			log.Fatalf("tnsfleetd: %v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case *promOut:
		fr.WritePrometheus(os.Stdout)
	default:
		fr.WriteText(os.Stdout)
	}

	if *addr != "" {
		// Stay up so collectors can scrape the final state; the CI smoke
		// job (and any operator) curls /metrics after the run completes.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}
