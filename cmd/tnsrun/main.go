// Command tnsrun executes a TNS codefile: interpreted if unaccelerated,
// mixed-mode (translated RISC with interpreter fallback) if accelerated.
//
// Usage:
//
//	tnsrun [-lib lib.tns] [-interp] [-time] [-budget N] [-profile p.pgo.json] prog.tns
//
// -interp forces interpretation even of accelerated codefiles (the paper's
// "execute the entire accelerated program in interpreter mode" debugging
// option). -time prints cycle accounting under the Cyclone/R model.
// -backend NAME refuses to run a translation that targets any other RISC
// backend (the runner otherwise picks the simulator matching the
// acceleration section's stamped target automatically); it also refuses
// interpreted-only runs, where the assertion would be vacuous.
// -profile captures a PGO profile of the run (either mode) and writes it to
// the given path for a later `axcel -profile` retranslation.
//
// -chaos N runs the fault-injection campaign instead of a program: N seeded
// codefile mutations across the built-in workloads, each asserted to be
// either rejected with a typed error at load or to run output-identical to
// the pure interpreter. -chaos-seed picks the deterministic seed and
// -chaos-out a directory for failing mutant artifacts.
//
// Exit codes: 0 program result, 1 runtime error, 2 usage, 3 corrupt input
// artifact (typed integrity rejection).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tnsr/internal/backend"
	"tnsr/internal/chaos"
	"tnsr/internal/codefile"
	"tnsr/internal/interp"
	"tnsr/internal/machine"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
	"tnsr/internal/xrun"
)

func main() {
	libPath := flag.String("lib", "", "system-library codefile")
	forceInterp := flag.Bool("interp", false, "ignore the translation; interpret")
	showTime := flag.Bool("time", false, "print cycle accounting")
	budget := flag.Int64("budget", 2_000_000_000, "instruction budget")
	wantBackend := flag.String("backend", "",
		"require the translation to target this backend (mixed-mode runs refuse any other)")
	profilePath := flag.String("profile", "", "write a PGO profile of this run")
	quarantine := flag.Int("quarantine", xrun.DefaultQuarantineThreshold,
		"trap-storm threshold before a procedure is demoted to the interpreter")
	chaosN := flag.Int("chaos", 0, "run a chaos campaign of N seeded mutations and exit")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos campaign base seed")
	chaosOut := flag.String("chaos-out", "", "directory for failing chaos mutants")
	flag.Parse()
	if *chaosN > 0 {
		os.Exit(runChaos(*chaosN, *chaosSeed, *chaosOut))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnsrun [-lib lib.tns] [-interp] prog.tns")
		os.Exit(2)
	}
	if *wantBackend != "" {
		if _, ok := backend.ByName(*wantBackend); !ok {
			fmt.Fprintf(os.Stderr, "tnsrun: unknown backend %q (have: %s)\n",
				*wantBackend, strings.Join(backend.Names(), ", "))
			os.Exit(2)
		}
	}
	user := mustRead(flag.Arg(0))
	if *wantBackend != "" && (*forceInterp || user.Accel == nil) {
		// The assertion would be vacuous on an interpreted run: there is
		// no translation whose target could be checked.
		fmt.Fprintf(os.Stderr, "tnsrun: -backend %s requires an accelerated codefile run in mixed mode (run axcel -backend %s first)\n",
			*wantBackend, *wantBackend)
		os.Exit(1)
	}
	var lib *codefile.File
	if *libPath != "" {
		lib = mustRead(*libPath)
	}
	var cap *pgo.Capture
	if *profilePath != "" {
		cap = pgo.NewCapture()
		cap.AttachFiles(user, lib)
	}
	writeProfile := func() {
		if cap == nil {
			return
		}
		if err := pgo.WriteFile(*profilePath, cap.Profile()); err != nil {
			fmt.Fprintln(os.Stderr, "tnsrun:", err)
			os.Exit(1)
		}
	}

	if *forceInterp || user.Accel == nil {
		m := interp.New(user, lib)
		if cap != nil {
			m.PGO = cap
		}
		if err := m.Run(*budget); err != nil {
			fmt.Fprintln(os.Stderr, "tnsrun:", err)
			os.Exit(1)
		}
		os.Stdout.Write(m.Console.Bytes())
		if m.Trap != tns.TrapNone {
			fmt.Fprintf(os.Stderr, "tnsrun: TNS trap %d at P=%d\n", m.Trap, m.TrapP)
			os.Exit(1)
		}
		if *showTime {
			im := &machine.CycloneRInterp
			cyc := im.Cycles(&m.Prof.Counts, m.Prof.LongUnits)
			fmt.Fprintf(os.Stderr, "%d TNS instructions; %.0f cycles interpreted on Cyclone/R (%.3f ms)\n",
				m.Prof.Instrs, cyc, 1e3*im.Seconds(cyc))
		}
		writeProfile()
		os.Exit(int(m.ExitStatus))
	}

	r, err := xrun.New(user, lib, risc.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnsrun:", err)
		os.Exit(1)
	}
	r.QuarantineThreshold = *quarantine
	if *wantBackend != "" && r.Backend().Name() != *wantBackend {
		fmt.Fprintf(os.Stderr, "tnsrun: translation targets backend %q, not the required %q (re-run axcel -backend %s)\n",
			r.Backend().Name(), *wantBackend, *wantBackend)
		os.Exit(1)
	}
	if r.Degraded {
		fmt.Fprintf(os.Stderr, "tnsrun: acceleration failed verification, running interpreted: %s\n",
			r.DegradedReason)
	}
	if cap != nil {
		r.Capture(cap)
	}
	if err := r.Run(*budget); err != nil {
		fmt.Fprintln(os.Stderr, "tnsrun:", err)
		os.Exit(1)
	}
	fmt.Print(r.Console())
	if r.Trap != tns.TrapNone {
		fmt.Fprintf(os.Stderr, "tnsrun: TNS trap %d at P=%d\n", r.Trap, r.TrapP)
		os.Exit(1)
	}
	if *showTime {
		total, riscCyc, interCyc := r.Cycles()
		fmt.Fprintf(os.Stderr,
			"%d RISC instructions, %.0f cycles (%.3f ms at 25 MHz)\n",
			r.Sim.Instrs, total, total/25e3)
		fmt.Fprintf(os.Stderr,
			"interpreter mode: %d interludes, %.2f%% of cycles (%.0f of %.0f)\n",
			r.Interludes, 100*r.InterpFraction(), interCyc, total)
		_ = riscCyc
	}
	writeProfile()
	os.Exit(int(r.ExitStatus))
}

func mustRead(path string) *codefile.File {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnsrun:", err)
		os.Exit(1)
	}
	defer f.Close()
	cf, err := codefile.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tnsrun: %s: %v\n", path, err)
		if codefile.IsCorrupt(err) {
			os.Exit(3)
		}
		os.Exit(1)
	}
	return cf
}

// runChaos executes the fault-injection campaign and returns the process
// exit code: 0 when every mutant honored the integrity contract, 1 when any
// violated it (failing mutants are written to outDir when given).
func runChaos(n int, seed int64, outDir string) int {
	sum, err := chaos.RunCampaign(nil, n, seed, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnsrun:", err)
		return 1
	}
	sum.WriteText(os.Stdout)
	if outDir != "" && len(sum.Failures) > 0 {
		if err := os.MkdirAll(outDir, 0o777); err != nil {
			fmt.Fprintln(os.Stderr, "tnsrun:", err)
			return 1
		}
		for _, f := range sum.Failures {
			if f.Data == nil {
				continue
			}
			name := fmt.Sprintf("mutant-%d-%s-%s.tns", f.Index, f.Workload, f.Op)
			if err := os.WriteFile(filepath.Join(outDir, name), f.Data, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "tnsrun:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "tnsrun: wrote %s\n", filepath.Join(outDir, name))
		}
	}
	if len(sum.Failures) > 0 {
		return 1
	}
	return 0
}
