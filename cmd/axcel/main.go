// Command axcel is the Accelerator: it augments a TNS codefile with
// optimized RISC code, the PMap, and translation statistics — invoked
// explicitly, after compilation, requiring no information from the user
// (hints are optional tuning).
//
// Usage:
//
//	axcel [flags] prog.tns
//
//	-level stmtdebug|default|fast   translation level (default "default")
//	-backend name                   RISC target to translate for (default
//	                                "mips"; see -backend list). The target
//	                                is stamped into the acceleration
//	                                section, so tnsrun simulates it with
//	                                the right machine automatically.
//	-o out.tns                      output path (default: in place)
//	-lib file.tns                   system-library codefile for summaries
//	-space 0|1                      code space of this file (1 = library)
//	-hint name=words                ReturnValSize hint (repeatable)
//	-workers n                      translation workers (0 = all CPUs)
//	-profile p.pgo.json             apply a captured PGO profile (advisory:
//	                                guards stay; a stale profile is ignored)
//	-profile-url http://host:9911   fetch the fleet aggregate for this
//	                                codefile from a tnsprofd daemon and apply
//	                                it (same advisory semantics; a missing or
//	                                stale aggregate degrades to no profile)
//	-token t                        bearer token for -profile-url and -remote
//	-profile-cover f                with -profile, translate only the hottest
//	                                procedures covering fraction f of the
//	                                observed residency weight
//	-cache dir                      persistent retranslation cache: serve the
//	                                translation from dir when an entry with
//	                                this exact (codefile, options, profile)
//	                                key exists, populate it otherwise
//	-remote http://host:9912        translate through a tnsxlated service:
//	                                submit the codefile, poll its content-
//	                                addressed key, fetch and locally re-verify
//	                                the accelerated result (byte-identical to
//	                                a local translation); any remote failure
//	                                degrades to translating locally
//	-report                         print the analysis report and exit
//	-stats                          print translation statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tnsr/internal/backend"
	_ "tnsr/internal/backend/ob0" // register the second target for -backend
	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/pgo"
	"tnsr/internal/profsrv"
	"tnsr/internal/tcache"
	"tnsr/internal/xlate"
)

type hintList []string

func (h *hintList) String() string     { return strings.Join(*h, ",") }
func (h *hintList) Set(s string) error { *h = append(*h, s); return nil }

func main() {
	level := flag.String("level", "default", "stmtdebug, default, or fast")
	target := flag.String("backend", "mips",
		"RISC target to translate for ("+strings.Join(backend.Names(), ", ")+", or list)")
	out := flag.String("o", "", "output codefile (default: rewrite input)")
	libPath := flag.String("lib", "", "system-library codefile (summaries)")
	space := flag.Int("space", 0, "code space (0 user, 1 library)")
	report := flag.Bool("report", false, "print the analysis report only")
	stats := flag.Bool("stats", false, "print translation statistics")
	workers := flag.Int("workers", 0,
		"translation workers; 0 uses every CPU (output is identical either way)")
	profilePath := flag.String("profile", "", "PGO profile to apply (see tnsprof -emit-profile)")
	profileURL := flag.String("profile-url", "",
		"tnsprofd base URL: fetch and apply the fleet aggregate for this codefile")
	token := flag.String("token", "", "bearer token for -profile-url and -remote")
	profileCover := flag.Float64("profile-cover", 0,
		"with -profile, translate only the hottest procedures covering this weight fraction")
	cacheDir := flag.String("cache", "", "persistent retranslation cache directory")
	remoteURL := flag.String("remote", "",
		"tnsxlated base URL: translate remotely, degrade to local on any failure")
	var hints hintList
	flag.Var(&hints, "hint", "ReturnValSize hint, name=words")
	flag.Parse()
	if *target == "list" {
		fmt.Println(strings.Join(backend.Names(), "\n"))
		os.Exit(0)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: axcel [flags] prog.tns")
		os.Exit(2)
	}

	be, ok := backend.ByName(*target)
	if !ok {
		fmt.Fprintf(os.Stderr, "axcel: unknown backend %q (have: %s)\n",
			*target, strings.Join(backend.Names(), ", "))
		os.Exit(2)
	}

	f := mustRead(flag.Arg(0))
	opts := core.Options{Space: uint8(*space), Workers: *workers, Backend: be}
	switch strings.ToLower(*level) {
	case "stmtdebug", "statementdebug":
		opts.Level = codefile.LevelStmtDebug
	case "default":
		opts.Level = codefile.LevelDefault
	case "fast":
		opts.Level = codefile.LevelFast
	default:
		fmt.Fprintf(os.Stderr, "axcel: unknown level %q\n", *level)
		os.Exit(2)
	}
	if *space == 1 {
		opts.CodeBase = millicode.LibCodeBase
	}
	if *libPath != "" {
		lib := mustRead(*libPath)
		opts.LibSummaries = map[uint16]int8{}
		for i, p := range lib.Procs {
			opts.LibSummaries[uint16(i)] = p.ResultWords
		}
	}
	if *profilePath != "" && *profileURL != "" {
		fmt.Fprintln(os.Stderr, "axcel: -profile and -profile-url are mutually exclusive")
		os.Exit(2)
	}
	if *profilePath != "" {
		prof, err := pgo.ReadFile(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "axcel:", err)
			os.Exit(1)
		}
		opts.Profile = prof
		opts.ProfileCover = *profileCover
	}
	if *profileURL != "" {
		// Fetch-then-translate. A fleet aggregate that doesn't exist (or
		// that was captured against a different build — core.Accelerate
		// ignores mismatched fingerprints) degrades to an unprofiled
		// translation; only a network/protocol failure is fatal, because
		// the user explicitly asked for fleet advice.
		cl := profsrv.NewClient(*profileURL, *token)
		prof, err := cl.Fetch(fmt.Sprintf("%016x", f.Fingerprint()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "axcel:", err)
			os.Exit(1)
		}
		if prof == nil {
			fmt.Fprintln(os.Stderr, "axcel: no fleet aggregate for this codefile yet; translating without a profile")
		}
		opts.Profile = prof
		opts.ProfileCover = *profileCover
	}
	if len(hints) > 0 {
		opts.Hints.ReturnValSize = map[string]int8{}
		for _, h := range hints {
			parts := strings.SplitN(h, "=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "axcel: bad hint %q\n", h)
				os.Exit(2)
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "axcel: bad hint %q: %v\n", h, err)
				os.Exit(2)
			}
			opts.Hints.ReturnValSize[parts[0]] = int8(n)
		}
	}

	if *report {
		rep, err := core.Analyze(f, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "axcel:", err)
			os.Exit(1)
		}
		fmt.Printf("procedures: %d (%d with known result sizes)\n", rep.Procs, rep.KnownResults)
		fmt.Printf("instructions: %d (+%d table words)\n", rep.Instrs, rep.Tables)
		fmt.Printf("overflow traps possible: %v\n", rep.TrapsPossible)
		fmt.Printf("calls needing run-time RP checks: %d\n", rep.CheckedCalls)
		if len(rep.GuessedProcs) > 0 {
			// The Accelerator "points out subroutines that may benefit
			// from hints".
			fmt.Printf("result sizes guessed (consider -hint name=words): %s\n",
				strings.Join(rep.GuessedProcs, ", "))
		}
		for a, why := range rep.PuzzleSites {
			fmt.Printf("puzzle point at %d: %s\n", a, why)
		}
		return
	}

	translated := false
	if *remoteURL != "" {
		// Remote-first: the service's output is byte-identical to a local
		// translation of the same key, so any failure — network, auth, a
		// failed remote translation — costs availability only; translate
		// locally and move on.
		cl := xlate.NewClient(*remoteURL, *token)
		if err := cl.Accelerate(f, opts); err != nil {
			fmt.Fprintf(os.Stderr, "axcel: remote translation failed (%v); translating locally\n", err)
		} else {
			translated = true
			if *stats {
				fmt.Printf("remote:           %s\n", *remoteURL)
			}
		}
	}
	switch {
	case translated: // served remotely, locally re-verified
	case *cacheDir != "":
		c, err := tcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "axcel:", err)
			os.Exit(1)
		}
		hit, err := c.Accelerate(f, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "axcel:", err)
			os.Exit(1)
		}
		if *stats {
			fmt.Printf("cache:            %s\n", map[bool]string{true: "hit", false: "miss"}[hit])
		}
	default:
		if err := core.Accelerate(f, opts); err != nil {
			fmt.Fprintln(os.Stderr, "axcel:", err)
			os.Exit(1)
		}
	}
	if *stats {
		s := f.Accel.Stats
		fmt.Printf("level:            %s\n", f.Accel.Level)
		fmt.Printf("TNS instructions: %d (+%d table words)\n", s.TNSInstrs, s.TableWords)
		fmt.Printf("RISC inline:      %d (%.2f per TNS instruction)\n",
			s.RISCInstrs, float64(s.RISCInstrs)/float64(s.TNSInstrs))
		fmt.Printf("dynamic size:     %.2fx (2i + 0.75)\n",
			2*float64(s.RISCInstrs)/float64(s.TNSInstrs)+0.75)
		fmt.Printf("RP checks:        %d\n", s.RPChecks)
		fmt.Printf("guessed procs:    %d\n", s.GuessedProcs)
		fmt.Printf("puzzle points:    %d\n", s.PuzzlePoints)
		fmt.Printf("flag ops elided:  %d\n", s.ElidedFlagOps)
		fmt.Printf("delay slots used: %d (%d welded statements)\n",
			s.FilledSlots, s.WeldedStmts)
	}
	dst := *out
	if dst == "" {
		dst = flag.Arg(0)
	}
	w, err := os.Create(dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axcel:", err)
		os.Exit(1)
	}
	defer w.Close()
	if _, err := f.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, "axcel:", err)
		os.Exit(1)
	}
}

func mustRead(path string) *codefile.File {
	r, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axcel:", err)
		os.Exit(1)
	}
	defer r.Close()
	f, err := codefile.Read(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "axcel: %s: %v\n", path, err)
		if codefile.IsCorrupt(err) {
			os.Exit(3)
		}
		os.Exit(1)
	}
	return f
}
