// Command tnsdbg is an interactive debugger for (accelerated) TNS
// programs, presenting the paper's CISC view: statement breakpoints,
// stepping, variable and register inspection, and both disassembly views.
//
// Usage:
//
//	tnsdbg [-lib lib.tns] prog.tns
//
// Commands:
//
//	b LINE        break at the statement on/after a source line
//	ba ADDR       break at a TNS code address
//	r | c         run / continue
//	s             step one statement
//	p NAME        print a variable
//	set NAME V    store a variable
//	regs          show TNS registers (exact at register-exact points)
//	l [N]         disassemble N TNS instructions at the current position
//	lr [N]        disassemble N RISC instructions (translated view)
//	where         show the current location
//	q             quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tnsr/internal/codefile"
	"tnsr/internal/debug"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/xrun"
)

func main() {
	libPath := flag.String("lib", "", "system-library codefile")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnsdbg [-lib lib.tns] prog.tns")
		os.Exit(2)
	}
	user := mustRead(flag.Arg(0))
	var lib *codefile.File
	if *libPath != "" {
		lib = mustRead(*libPath)
	}
	r, err := xrun.New(user, lib, risc.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnsdbg:", err)
		os.Exit(1)
	}
	d := debug.New(r)
	level := "interpreted"
	if user.Accel != nil {
		level = "accelerated (" + user.Accel.Level.String() + ")"
	}
	fmt.Printf("tnsdbg: %s, %s; %d procedures, %d statements\n",
		user.Name, level, len(user.Procs), len(user.Statements))

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(tnsdbg) ")
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "q", "quit":
			return
		case "b":
			if len(fields) != 2 {
				fmt.Println("usage: b LINE")
				continue
			}
			line, _ := strconv.Atoi(fields[1])
			addr, err := d.BreakAtStatement(int32(line))
			report(err)
			if err == nil {
				fmt.Printf("breakpoint at TNS %d\n", addr)
			}
		case "ba":
			if len(fields) != 2 {
				fmt.Println("usage: ba ADDR")
				continue
			}
			a, _ := strconv.Atoi(fields[1])
			report(d.BreakAt(interp.SpaceUser, uint16(a)))
		case "r", "c":
			report(d.Run(2_000_000_000))
			showStop(d)
		case "s":
			_, err := d.StepStatement(100_000_000)
			report(err)
			showStop(d)
		case "p":
			if len(fields) != 2 {
				fmt.Println("usage: p NAME")
				continue
			}
			v, err := d.ReadVar(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("%s = %d\n", fields[1], v)
		case "set":
			if len(fields) != 3 {
				fmt.Println("usage: set NAME VALUE")
				continue
			}
			v, _ := strconv.Atoi(fields[2])
			report(d.WriteVar(fields[1], int32(v)))
		case "regs":
			R, rp, cc := d.Registers()
			fmt.Printf("RP=%d CC=%+d\n", rp, cc)
			for i, v := range R {
				fmt.Printf("  R%d=%6d (0x%04x)\n", i, int16(v), v)
			}
		case "l":
			n := argN(fields, 8)
			loc := d.Where()
			fmt.Print(d.DisassembleTNS(loc.Space, loc.TNSAddr, n))
		case "lr":
			n := argN(fields, 8)
			fmt.Print(d.DisassembleRISC(n))
		case "where":
			showStop(d)
		default:
			fmt.Println("commands: b ba r c s p set regs l lr where q")
		}
	}
}

func argN(fields []string, def int) int {
	if len(fields) > 1 {
		if v, err := strconv.Atoi(fields[1]); err == nil {
			return v
		}
	}
	return def
}

func report(err error) {
	if err != nil {
		fmt.Println(err)
	}
}

func showStop(d *debug.Debugger) {
	if d.R.Halted {
		fmt.Printf("program finished (exit %d, console %q)\n",
			d.R.ExitStatus, d.R.Console())
		return
	}
	loc := d.Where()
	mode := "interp"
	if loc.RISCMode {
		mode = "RISC"
	}
	exact := ""
	if loc.Exact {
		exact = ", register-exact"
	}
	fmt.Printf("stopped at %s+%d (line %d) [%s%s]\n",
		loc.Proc, loc.TNSAddr, loc.Line, mode, exact)
}

func mustRead(path string) *codefile.File {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnsdbg:", err)
		os.Exit(1)
	}
	defer f.Close()
	cf, err := codefile.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tnsdbg: %s: %v\n", path, err)
		os.Exit(1)
	}
	return cf
}
