// Command tnsgen runs the coverage-guided TNS program-generator campaign
// from the command line: N seeded programs through the differential oracle
// (interpreted vs accelerated at every option level), with optional
// steering toward uncovered escape-reason classes, failure minimization,
// and scenario output for the checked-in corpus.
//
// Usage:
//
//	tnsgen [-n N] [-seed S] [-steer] [-minimize] [-out dir]
//	       [-lib-every K] [-chaos-every K] [-adaptive-every K] [-workers W]
//	       [-backends mips,ob0]
//
// The campaign is fully deterministic in (-seed, -n, -steer, the every-K
// knobs): rerunning with the same flags reruns the identical programs.
// -minimize delta-debugs every failing program before reporting it;
// -out writes each failure (minimized if requested) as a scenario file the
// internal/tnsgen corpus tests can replay. -backends runs the oracle's
// level sweep on each named RISC target (a cross-backend campaign: any
// divergence on one target and not another is a backend bug by
// construction); the default is the default target only.
//
// Exit codes: 0 all programs passed, 1 failures or missing class coverage,
// 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tnsr/internal/backend"
	"tnsr/internal/obs"
	"tnsr/internal/tnsgen"
)

func main() {
	n := flag.Int("n", 200, "number of generated programs")
	seed := flag.Int64("seed", 1, "campaign base seed (program i uses seed+i)")
	steer := flag.Bool("steer", false, "steer generation toward uncovered escape classes")
	minimize := flag.Bool("minimize", false, "delta-debug failing programs before reporting")
	out := flag.String("out", "", "directory for failure scenario files")
	libEvery := flag.Int("lib-every", 5, "every k-th program is a user+library pair (0 = never)")
	chaosEvery := flag.Int("chaos-every", 0, "add a chaos pass to every k-th program (0 = never)")
	adaptiveEvery := flag.Int("adaptive-every", 0, "add a RunAdaptive cycle to every k-th program (0 = never)")
	workers := flag.Int("workers", 0, "translator worker count (0 = serial)")
	backends := flag.String("backends", "",
		"comma-separated RISC targets to run the oracle on (default: the default target)")
	flag.Parse()
	if flag.NArg() != 0 || *n <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	o := tnsgen.DefaultOracle()
	o.Workers = *workers
	if *backends != "" {
		for _, name := range strings.Split(*backends, ",") {
			be, ok := backend.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "tnsgen: unknown backend %q (have: %s)\n",
					name, strings.Join(backend.Names(), ", "))
				os.Exit(2)
			}
			o.Backends = append(o.Backends, be)
		}
	}
	c := &tnsgen.Campaign{
		Seed: *seed, N: *n, Steer: *steer,
		LibraryEvery:  *libEvery,
		ChaosEvery:    *chaosEvery,
		AdaptiveEvery: *adaptiveEvery,
		Oracle:        o,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	res := c.Run()

	fmt.Printf("campaign: seed=%d n=%d steer=%v\n", *seed, *n, *steer)
	fmt.Printf("programs=%d passes=%d bp-hits=%d chaos-mutants=%d failures=%d\n",
		res.Programs, res.Passes, res.BPHits, res.ChaosMutants, len(res.Failures))
	fmt.Print(res.Coverage.String())

	bad := false
	if miss := res.Coverage.Missing(); *steer && len(miss) > 0 {
		fmt.Printf("MISSING run-time coverage: %v\n", miss)
		bad = true
	}
	if u := res.Coverage.Runtime[obs.EscapeUnknown]; u != 0 {
		fmt.Printf("ESCAPE-UNKNOWN fired %d times\n", u)
		bad = true
	}

	for i := range res.Failures {
		f := &res.Failures[i]
		p := f.Program
		if *minimize {
			// The minimizer's keep predicate is "the oracle still fails".
			p = tnsgen.Minimize(p, func(v *tnsgen.Program) bool {
				_, err := tnsgen.RunOracle(v.Subject(), c.Oracle)
				return err != nil
			})
		}
		fmt.Printf("FAIL %s (seed %d): %s\n", f.Name, f.Seed, f.Err)
		sc := tnsgen.FromFailure(&tnsgen.Failure{
			Name: f.Name, Seed: f.Seed, Config: f.Config, Program: p, Err: f.Err,
		})
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*out, fmt.Sprintf("%s.tns", f.Name))
			if err := os.WriteFile(path, sc.Marshal(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", path)
		} else {
			fmt.Printf("  user:\n%s", p.UserSource())
			if lib := p.LibSource(); lib != "" {
				fmt.Printf("  lib:\n%s", lib)
			}
		}
	}
	if len(res.Failures) > 0 || bad {
		os.Exit(1)
	}
}
