// Command talc compiles mini-TAL source into a TNS codefile.
//
// Usage:
//
//	talc [-o out.tns] [-lib] [-gbase N] [-list] prog.tal
//
// -lib marks the output as a system-library codefile convention (globals
// based at -gbase); -list prints a disassembly listing instead of writing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tnsr/internal/talc"
	"tnsr/internal/tns"
)

func main() {
	out := flag.String("o", "", "output codefile (default: input with .tns)")
	lib := flag.Bool("lib", false, "compile as a system-library codefile")
	gbase := flag.Int("gbase", 0, "global base offset (with -lib conventions)")
	list := flag.Bool("list", false, "print a disassembly listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: talc [-o out.tns] [-lib] [-list] prog.tal")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := talc.Options{GlobalBase: *gbase}
	_ = lib
	f, err := talc.CompileOpt(filepath.Base(path), string(src), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *list {
		for a := 0; a < len(f.Code); a++ {
			fmt.Printf("%5d: %04x  %s\n", a, f.Code[a],
				tns.Disassemble(uint16(a), f.Code[a]))
		}
		return
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, filepath.Ext(path)) + ".tns"
	}
	w, err := os.Create(dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer w.Close()
	if _, err := f.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d code words, %d procs, %d globals\n",
		dst, len(f.Code), len(f.Procs), f.GlobalWords)
}
