// Command tnsprofd is the fleet profile daemon: the aggregation point that
// turns per-machine PGO captures into a shared, continuously-improving
// translation hint store. Runners push captures (tnsprof -push), the daemon
// merges them order-independently under the fingerprint of the codefile
// they were captured against, ages the aggregate across runs so stale
// behavior decays, and serves the aggregate back to any machine about to
// translate the same codefile (axcel -profile-url, xrun.RunAdaptiveOpts).
//
// Usage:
//
//	tnsprofd -addr :9911 -dir /var/lib/tnsprofd [flags]
//
//	-addr host:port    listen address (default "127.0.0.1:9911")
//	-dir path          profile store directory (default "./profstore")
//	-token t           require "Authorization: Bearer t" on the profile
//	                   endpoints (metrics and health stay open); empty
//	                   disables auth
//	-max-body n        reject uploads larger than n bytes (default 4 MiB)
//	-age-every n       age an aggregate whenever its merged run count
//	                   reaches n (halve histograms, drop cold rows);
//	                   0 disables aging (default 32)
//	-age-floor n       drop aged rows whose count falls below n (default 1)
//	-rate r            sustained requests/second across all clients
//	                   (default 50; 0 disables limiting)
//	-burst b           rate-limiter burst size (default 100)
//	-shards n          spread the store across n subdirectories keyed by
//	                   fingerprint prefix (0 = single directory)
//	-peers list        comma-separated sibling tnsprofd base URLs; a GET
//	                   serves the merge of the local aggregate with every
//	                   reachable peer's local aggregate (an unreachable
//	                   peer degrades out and is counted in /metrics)
//	-peer-timeout d    per-peer fetch timeout (default 2s)
//	-peer-token t      bearer token presented to peers (default: -token)
//	-peer-break-after n    open a peer's circuit breaker after n
//	                       consecutive failures; further merges skip the
//	                       peer without paying its timeout (0 = default 5)
//	-peer-break-cooldown d how long an open breaker waits before letting
//	                       one probe through (0 = default 5s)
//	-drain-timeout d   bound on the SIGTERM/SIGINT graceful drain: refuse
//	                   new uploads, keep serving reads, exit when in-flight
//	                   requests finish (default 10s)
//
// Endpoints:
//
//	POST /v1/profiles/{fingerprint}   upload one capture; responds with the
//	                                  merged aggregate
//	GET  /v1/profiles/{fingerprint}   fetch the current aggregate
//	GET  /metrics                     Prometheus text exposition
//	GET  /healthz                     liveness probe
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tnsr/internal/profsrv"
	"tnsr/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9911", "listen address")
	dir := flag.String("dir", "profstore", "profile store directory")
	token := flag.String("token", "", "bearer token (empty disables auth)")
	maxBody := flag.Int64("max-body", profsrv.DefaultMaxBody, "maximum upload size in bytes")
	ageEvery := flag.Int64("age-every", 32, "age an aggregate every N merged runs (0 = never)")
	ageFloor := flag.Int64("age-floor", profsrv.DefaultAgeFloor, "drop aged rows below this count")
	rate := flag.Float64("rate", 50, "sustained requests/second (0 = unlimited)")
	burst := flag.Int("burst", 100, "rate-limiter burst")
	shards := flag.Int("shards", 0, "spread the store across N subdirectories (0 = single dir)")
	peers := flag.String("peers", "", "comma-separated sibling tnsprofd base URLs")
	peerTimeout := flag.Duration("peer-timeout", profsrv.DefaultPeerTimeout, "per-peer fetch timeout")
	peerToken := flag.String("peer-token", "", "bearer token presented to peers (default: -token)")
	breakAfter := flag.Int("peer-break-after", 0, "open a peer's circuit breaker after N consecutive failures (0 = default)")
	breakCooldown := flag.Duration("peer-break-cooldown", 0, "how long an open peer breaker waits before probing (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound on SIGTERM/SIGINT")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tnsprofd [flags]")
		os.Exit(2)
	}

	var st *profsrv.Store
	if *shards > 0 {
		backing, err := store.OpenSharded(*dir, *shards)
		if err != nil {
			log.Fatalf("tnsprofd: %v", err)
		}
		st = profsrv.NewStore(backing)
	} else {
		var err error
		st, err = profsrv.OpenStore(*dir)
		if err != nil {
			log.Fatalf("tnsprofd: %v", err)
		}
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if *peerToken == "" {
		*peerToken = *token
	}

	// Restart recovery: a previous life killed mid-write leaves torn write
	// temporaries in the store; they were never visible to any read path,
	// sweeping reclaims them before traffic arrives.
	if n, err := st.Sweep(); err != nil {
		log.Printf("tnsprofd: startup sweep: %v", err)
	} else if n > 0 {
		log.Printf("tnsprofd: startup sweep reclaimed %d torn write temporaries", n)
	}

	srv := profsrv.New(profsrv.Config{
		Store:             st,
		Token:             *token,
		MaxBody:           *maxBody,
		AgeEvery:          *ageEvery,
		AgeFloor:          *ageFloor,
		RatePerSec:        *rate,
		RateBurst:         *burst,
		Peers:             peerList,
		PeerTimeout:       *peerTimeout,
		PeerToken:         *peerToken,
		PeerBreakAfter:    *breakAfter,
		PeerBreakCooldown: *breakCooldown,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("tnsprofd: serving profiles from %s on %s (auth %s, age every %d runs, %d peers)",
		*dir, *addr, map[bool]string{true: "on", false: "off"}[*token != ""], *ageEvery, len(peerList))
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != http.ErrServerClosed {
			errc <- err
		}
	}()

	// SIGTERM/SIGINT drains: refuse new uploads (503 + Retry-After; every
	// accepted upload is already durably merged when its 200 goes out),
	// keep serving reads, and close the listener once in-flight requests
	// finish.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("tnsprofd: %v", err)
	case s := <-sig:
		log.Printf("tnsprofd: %v: draining (timeout %v)", s, *drainTimeout)
	}
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("tnsprofd: listener shutdown: %v", err)
	}
	log.Printf("tnsprofd: drained")
}
