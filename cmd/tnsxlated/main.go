// Command tnsxlated is the translation service daemon: accept TNS
// codefiles over HTTP, translate them through the same deterministic
// Accelerator every local tool uses, keep the accelerated codefiles in a
// content-addressed store keyed by core.Options.TransKey, and serve them
// back. Fragment translation for every concurrent submission shares one
// work-stealing pool, so a large codefile cannot starve a small one
// submitted after it.
//
// Usage:
//
//	tnsxlated -addr :9912 -dir /var/lib/tnsxlated [flags]
//
//	-addr host:port      listen address (default "127.0.0.1:9912")
//	-dir path            codefile store directory (default "./xlatestore")
//	-shards n            spread the store across n subdirectories keyed by
//	                     TransKey prefix (0 = single directory)
//	-cache-max-bytes n   evict least-recently-used store entries past this
//	                     total size (0 = unbounded)
//	-token t             require "Authorization: Bearer t" on /v1 (metrics
//	                     and health stay open); empty disables auth
//	-max-body n          reject submissions larger than n bytes
//	                     (default 64 MiB)
//	-rate r              sustained requests/second per client (default 50;
//	                     0 disables limiting)
//	-burst b             rate-limiter burst size (default 100)
//	-workers n           fragment translation workers (0 = all CPUs)
//	-fifo                strict submission-order scheduling (benchmark
//	                     baseline; production wants the default stealing)
//	-drain-timeout d     bound on the SIGTERM/SIGINT graceful drain: refuse
//	                     new submissions, finish in-flight translations
//	                     into the store, then exit (default 30s)
//
// At startup the daemon sweeps torn write temporaries a killed previous
// life left in the store; completed results survive the crash and serve
// byte-identically, while clients of lost in-flight jobs re-submit and the
// content-addressed key dedups the replay.
//
// Endpoints:
//
//	POST /v1/xlate        submit a codefile + translation knobs
//	GET  /v1/xlate/{key}  fetch the accelerated codefile (re-verified)
//	GET  /metrics         Prometheus text exposition
//	GET  /healthz         liveness probe
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tnsr/internal/store"
	"tnsr/internal/tcache"
	"tnsr/internal/xlate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9912", "listen address")
	dir := flag.String("dir", "xlatestore", "codefile store directory")
	shards := flag.Int("shards", 0, "spread the store across N subdirectories (0 = single dir)")
	maxBytes := flag.Int64("cache-max-bytes", 0, "evict LRU store entries past this total size (0 = unbounded)")
	token := flag.String("token", "", "bearer token (empty disables auth)")
	maxBody := flag.Int64("max-body", xlate.DefaultMaxBody, "maximum submission size in bytes")
	rate := flag.Float64("rate", 50, "sustained requests/second per client (0 = unlimited)")
	burst := flag.Int("burst", 100, "rate-limiter burst")
	workers := flag.Int("workers", 0, "fragment translation workers (0 = all CPUs)")
	fifo := flag.Bool("fifo", false, "strict submission-order scheduling (benchmark baseline)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound on SIGTERM/SIGINT")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tnsxlated [flags]")
		os.Exit(2)
	}

	var cache *tcache.Cache
	if *shards > 0 {
		backing, err := store.OpenSharded(*dir, *shards)
		if err != nil {
			log.Fatalf("tnsxlated: %v", err)
		}
		cache = tcache.New(backing)
	} else {
		var err error
		cache, err = tcache.Open(*dir)
		if err != nil {
			log.Fatalf("tnsxlated: %v", err)
		}
	}
	if *maxBytes > 0 {
		cache.SetMaxBytes(*maxBytes)
	}

	srv := xlate.New(xlate.Config{
		Cache:      cache,
		Token:      *token,
		MaxBody:    *maxBody,
		RatePerSec: *rate,
		RateBurst:  *burst,
		Workers:    *workers,
		FIFO:       *fifo,
	})
	if n := srv.Swept(); n > 0 {
		log.Printf("tnsxlated: startup sweep reclaimed %d torn write temporaries", n)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("tnsxlated: serving translations from %s on %s (auth %s, %s scheduling)",
		*dir, *addr, map[bool]string{true: "on", false: "off"}[*token != ""],
		map[bool]string{true: "fifo", false: "work-stealing"}[*fifo])
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != http.ErrServerClosed {
			errc <- err
		}
	}()

	// SIGTERM/SIGINT drains: refuse new submissions (503 + Retry-After),
	// finish in-flight translations into the store, then close the
	// listener. A client mid-poll either fetches its completed result
	// before the listener goes, or re-submits to the restarted daemon and
	// the content-addressed key dedups the replay.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("tnsxlated: %v", err)
	case s := <-sig:
		log.Printf("tnsxlated: %v: draining (timeout %v)", s, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("tnsxlated: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("tnsxlated: listener shutdown: %v", err)
	}
	log.Printf("tnsxlated: drained")
}
