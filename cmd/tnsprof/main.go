// Command tnsprof runs a workload or example program in mixed mode with the
// execution telemetry recorder attached and prints the report: mode
// residency ("% time interpreted", as the paper frames it), the
// escape-reason histogram, PMap hit rate, per-procedure attribution and
// translation-phase timings.
//
// Usage:
//
//	tnsprof dhry16            human-readable report for one workload
//	tnsprof -level fast tal   choose the acceleration level
//	tnsprof -json dhry16      machine-readable report (schema tnsr/obs-report/v1)
//	tnsprof -prom dhry16      Prometheus text exposition format
//	tnsprof -list             list runnable workloads and examples
//
//	tnsprof -emit-profile p.pgo.json dhry16
//	    additionally run the observe -> retranslate -> rerun cycle
//	    (xrun.RunAdaptive) and write the captured PGO profile; the printed
//	    report is then the profile-fed second pass.
//
//	tnsprof -push http://host:9911 dhry16
//	    run the same cycle against a tnsprofd fleet profile daemon: pass 1
//	    translates under the fetched fleet aggregate, the local capture is
//	    pushed, and the printed report is the pass steered by the merged
//	    aggregate. -push-token sends a bearer token.
//
//	tnsprof -merge a.json b.json ...
//	    merge per-machine JSON reports (obs.Report.Merge, the fleet host's
//	    aggregation) into one report and print it; composes with
//	    -json/-prom/-top.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tnsr/internal/bench"
	"tnsr/internal/codefile"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/profsrv"
	"tnsr/internal/xrun"
)

func parseLevel(s string) (codefile.AccelLevel, error) {
	switch strings.ToLower(s) {
	case "stmtdebug", "stmt-debug", "debug":
		return codefile.LevelStmtDebug, nil
	case "default", "":
		return codefile.LevelDefault, nil
	case "fast":
		return codefile.LevelFast, nil
	}
	return 0, fmt.Errorf("unknown level %q (want stmtdebug, default or fast)", s)
}

func main() {
	level := flag.String("level", "default", "acceleration level: stmtdebug, default or fast")
	iters := flag.Int("iters", 0, "workload iteration count (0 = bench default)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	promOut := flag.Bool("prom", false, "emit the report in Prometheus text format")
	top := flag.Int("top", 10, "rows in the hottest-sites and per-procedure tables")
	list := flag.Bool("list", false, "list runnable workloads and examples")
	emitProfile := flag.String("emit-profile", "",
		"capture a PGO profile via the adaptive two-pass cycle and write it here")
	push := flag.String("push", "",
		"tnsprofd base URL: fetch the fleet aggregate, run the adaptive cycle, push the capture")
	pushToken := flag.String("push-token", "", "bearer token for -push")
	mergeIn := flag.Bool("merge", false,
		"treat the arguments as per-machine JSON report files and print their merge")
	flag.Parse()

	if *mergeIn {
		rep, err := mergeReports(flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tnsprof: %v\n", err)
			os.Exit(1)
		}
		emit(rep, *jsonOut, *promOut, *top)
		return
	}

	if *list {
		for _, name := range bench.ProfileNames() {
			fmt.Println(name)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnsprof [-level L] [-iters N] [-json|-prom] <workload>")
		fmt.Fprintln(os.Stderr, "run tnsprof -list for the available names")
		os.Exit(2)
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tnsprof: %v\n", err)
		os.Exit(2)
	}

	var rep *obs.Report
	if *emitProfile != "" || *push != "" {
		var o xrun.AdaptiveOptions
		if *push != "" {
			o.Source = profsrv.NewClient(*push, *pushToken)
		}
		prof, prep, err := bench.CaptureWorkloadOpts(flag.Arg(0), lvl, *iters, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tnsprof: %v\n", err)
			os.Exit(1)
		}
		if *emitProfile != "" {
			if err := pgo.WriteFile(*emitProfile, prof); err != nil {
				fmt.Fprintf(os.Stderr, "tnsprof: %v\n", err)
				os.Exit(1)
			}
		}
		rep = prep
	} else {
		rep, err = bench.ProfileWorkload(flag.Arg(0), lvl, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tnsprof: %v\n", err)
			os.Exit(1)
		}
	}
	emit(rep, *jsonOut, *promOut, *top)
}

func emit(rep *obs.Report, jsonOut, promOut bool, top int) {
	switch {
	case jsonOut:
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tnsprof: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case promOut:
		rep.WritePrometheus(os.Stdout)
	default:
		rep.WriteText(os.Stdout, top)
	}
}

// mergeReports folds per-machine report files left to right with
// obs.Report.Merge — the same aggregation the fleet host applies.
func mergeReports(paths []string) (*obs.Report, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("-merge needs at least one report file")
	}
	var acc *obs.Report
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		rep, err := obs.ParseReport(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if acc == nil {
			acc = rep
			continue
		}
		if err := acc.Merge(rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return acc, nil
}
