// Command benchtab regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	benchtab               print everything
//	benchtab -table N      print only table N (1..4)
//	benchtab -figure N     print only figure N (1..2)
//	benchtab -claims       print only the headline claims
//	benchtab -iters k=v,.. override per-workload iteration counts
//	benchtab -backend name measure against this RISC target instead of the
//	                       default MIPS/R3000; the target runs on its own
//	                       timing model, so times are not comparable to the
//	                       paper's tables (fidelity and expansion still are)
//	benchtab -fleet N      run an N-machine ET1 fleet and print (and, with
//	                       -jsondir, export as BENCH_fleet.json) aggregate
//	                       throughput and latency percentiles
//	benchtab -xlate N      submit N codefiles to an in-process tnsxlated,
//	                       cold then cached, and print (and, with -jsondir,
//	                       export as BENCH_xlate.json) submit→accelerated
//	                       latency plus queue depth and steal counts
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tnsr/internal/backend"
	"tnsr/internal/bench"
	"tnsr/internal/fleet"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1..4)")
	figure := flag.Int("figure", 0, "print only this figure (1..2)")
	claims := flag.Bool("claims", false, "print only the headline claims")
	ablation := flag.String("ablation", "", "run the optimization ablation on a workload (e.g. dhry16)")
	crossover := flag.Bool("crossover", false, "static vs dynamic translation crossover (extension)")
	iters := flag.String("iters", "", "override iteration counts, e.g. dhry16=500,et1=100")
	jsondir := flag.String("jsondir", "", "also write machine-readable BENCH_<workload>.json files here")
	fleetN := flag.Int("fleet", 0, "run an N-machine ET1 fleet benchmark")
	fleetChaos := flag.Int("fleet-chaos", 0, "chaos machines within the -fleet run")
	fleetSeed := flag.Int64("fleet-seed", 1, "seed for the -fleet run")
	xlateN := flag.Int("xlate", 0, "benchmark the translation service with N concurrent codefiles")
	target := flag.String("backend", "mips",
		"RISC target to measure ("+strings.Join(backend.Names(), ", ")+")")
	flag.Parse()

	be, ok := backend.ByName(*target)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchtab: unknown backend %q (have: %s)\n",
			*target, strings.Join(backend.Names(), ", "))
		os.Exit(2)
	}
	if be.ID() != 0 {
		// Non-default targets execute on their own timing model; the
		// paper's tables describe the MIPS/R3000 numbers.
		bench.Target = be
		fmt.Fprintf(os.Stderr,
			"benchtab: measuring backend %q on its own timing model; times are not comparable to the paper's tables\n",
			be.Name())
	}

	if *iters != "" {
		for _, kv := range strings.Split(*iters, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "bad -iters entry %q\n", kv)
				os.Exit(2)
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -iters entry %q: %v\n", kv, err)
				os.Exit(2)
			}
			bench.Iterations[parts[0]] = n
		}
	}

	if *xlateN > 0 {
		recs, err := bench.MeasureXlate(*xlateN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: xlate: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.XlateTable(recs))
		if *jsondir != "" {
			if err := bench.WriteXlateJSON(*jsondir, recs); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *fleetN > 0 {
		fr, err := fleet.Run(fleet.Config{
			Machines: *fleetN, ChaosMachines: *fleetChaos, Seed: *fleetSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: fleet: %v\n", err)
			os.Exit(1)
		}
		fr.WriteText(os.Stdout)
		if *jsondir != "" {
			rr := fr.Final()
			rec := bench.FleetRecord{
				Schema:         bench.BenchSchema,
				Workload:       fr.Workload,
				Mode:           "fleet",
				Machines:       fr.Machines,
				TxnsPerMachine: fr.TxnsPerMachine,
				ThroughputTPS:  rr.ThroughputTPS,
				P50Ms:          rr.Latency.P50Ms,
				P95Ms:          rr.Latency.P95Ms,
				P99Ms:          rr.Latency.P99Ms,
				InterpPct:      100 * rr.Obs.Modes.InterpFraction,
				Serving:        rr.MachineStates.Serving,
				Degraded:       rr.MachineStates.Degraded,
				Failed:         rr.MachineStates.Failed,
			}
			if err := bench.WriteFleetJSON(*jsondir, []bench.FleetRecord{rec}); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *crossover {
		points, err := bench.Crossover([]int{1, 5, 20, 100, 500, 2500})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.CrossoverTable(points))
		return
	}

	if *ablation != "" {
		rows, err := bench.Ablate(*ablation, bench.Iterations[*ablation])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.AblationTable(*ablation, rows))
		return
	}

	rows, err := bench.Measure()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	if *jsondir != "" {
		if err := bench.WriteBenchJSON(*jsondir, rows); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}
	switch {
	case *table == 1:
		fmt.Print(bench.Table1(rows))
	case *table == 2:
		fmt.Print(bench.Table2(rows))
	case *table == 3:
		fmt.Print(bench.Table3(rows))
	case *table == 4:
		fmt.Print(bench.Table4(rows))
	case *figure == 1:
		fmt.Print(bench.Figure1(rows))
	case *figure == 2:
		fmt.Print(bench.Figure2(rows))
	case *claims:
		fmt.Print(bench.Claims(rows))
	default:
		fmt.Print(bench.FullReport(rows))
	}
}
